(** OCaml 5 [Domain]-based worker pool behind the VTI fan-out (Figure 4).

    [map]/[map_array] evaluate [f] over every element on up to [jobs]
    domains (default {!default_jobs}) and return results in input order.
    A raising task stops the pool: remaining elements are abandoned, all
    domains are joined, and the task's exception is re-raised on the
    calling domain with its original backtrace (when several tasks raise
    concurrently, the first recorded failure wins).  Tasks must not
    share mutable state. *)

(** [Domain.recommended_domain_count], clamped to [1, 16]. *)
val default_jobs : unit -> int

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
