(** The seed VTI flow, kept with the original surface as the differential
    oracle for {!Flow} (see PR history: the same pattern as
    [Netsim_baseline] / [Readback_baseline]).

    The paper's headline compile-time contribution: the designer declares
    which instances they will iterate on; VTI gives each an
    over-provisioned private partition ([ER = resource x (1 + c)], see
    {!module:Estimate}) inside the debug SLR, compiles the static shell
    once, and thereafter a change to an iterated instance recompiles only
    its partition and ships a {e partial} bitstream — minutes instead of
    hours, with every other core's live state preserved across the
    reload.

    Replicated units (the 5400 identical cores of the §5.1 SoC) are
    synthesized once and stamped, which is what makes the initial VTI
    compile competitive with the vendor flow despite the partition
    constraints. *)

module Netlist = Zoomie_synth.Netlist
module Synthesize = Zoomie_synth.Synthesize
module Timing = Zoomie_pnr.Timing
module Route = Zoomie_pnr.Route
module Framegen = Zoomie_pnr.Framegen
module Cost_model = Zoomie_pnr.Cost_model
module Board = Zoomie_bitstream.Board
open Zoomie_fabric

(** A compilation project: the design, its unit structure, and the VTI
    knobs ([c] = over-provision coefficient, [debug_slr] = which chiplet
    hosts the iterated partitions). *)
type project = {
  device : Device.t;
  design : Zoomie_rtl.Design.t;
  clock_root : string;
  freq_mhz : float;
  replicated_units : string list;  (** module names synthesized once, stamped *)
  iterated : string list;  (** instance paths given private partitions *)
  c : float;  (** over-provision coefficient (paper default 0.30) *)
  debug_slr : int;
}

(** One compiled unit: either a stamped replica or an iterated partition
    (the latter carries its reserved region). *)
type stamp_build = {
  sb_path : string;
  sb_module : string;
  sb_netlist : Netlist.t;
  sb_stats : Synthesize.stats;
  sb_locmap : Loc.map;
  sb_clock_env : (string * string) list;
  sb_region : Region.t option;  (** [Some r] iff this is an iterated partition *)
}

(** A full VTI build: shell + stamps, linked; the input to {!recompile}
    and {!load_onto}. *)
type build = {
  project : project;
  shell_netlist : Netlist.t;
  shell_stats : Synthesize.stats;
  shell_locmap : Loc.map;
  stamps : stamp_build list;
  partition_regions : (string * Region.t) list;
  static_regions : Region.t list;
  netlist : Netlist.t;  (** the linked whole-design netlist *)
  locmap : Loc.map;
  route : Route.stats;
  timing : Timing.report;
  frames : Framegen.frame_write list;
  bitstream : Board.bitstream;
  modeled_seconds : float;  (** modeled compile wall-clock (Figure 7) *)
  cost : Cost_model.phase;
}

(** Fixed post-place link/assembly overhead charged to every VTI run. *)
val link_overhead_s : float

(** Partition compiles run on this many modeled parallel jobs. *)
val parallel_jobs : int

(** Resource demand of a synthesized netlist (what provisioning sizes). *)
val demand_of : Netlist.t -> Resource.t

(** Initial compile: synthesize the shell and each unique unit, provision
    iterated partitions in the debug SLR, place, link, time, and generate
    the full bitstream.

    @raise Estimate.Provision_failure if the debug SLR cannot fit the
    requested partitions at coefficient [c]. *)
val compile : project -> build

(** The changed instance no longer fits its over-provisioned region —
    the §3.5 failure mode that forces a full recompile. *)
exception Partition_overflow of string

(** Recompile exactly one iterated partition with new RTL and emit a
    partial bitstream for its region; everything else is reused.
    [modeled_seconds] of the result is the incremental cost (the Figure 7
    iteration time).

    @raise Partition_overflow if the new RTL exceeds the reserved region.
    @raise Invalid_argument if [path] was not declared iterated. *)
val recompile : build -> path:string -> circuit:Zoomie_rtl.Circuit.t -> build

(** Program the build's bitstream (full or partial) onto a board. *)
val load_onto : Board.t -> build -> unit

(** {1 Checkpoints}

    The analogue of a vendor design checkpoint: a build saved to disk so
    a debugging session can resume without the initial compile. *)

val checkpoint_magic : string

exception Bad_checkpoint of string

val save_checkpoint : build -> string -> unit

(** @raise Bad_checkpoint on a missing/garbled/mismatched file. *)
val load_checkpoint : string -> build
