(** The VTI compilation flow (§3.5, Figure 4, Table 1).

    Compilation unit: partition.  Optimization: partition-local.  Linking:
    after routing.  The designer declares which instances they will iterate
    on; each gets an over-provisioned private region inside the debug SLR,
    everything else is compiled into the static region.  Incremental
    recompiles touch exactly one partition: re-synthesize the changed
    module, re-place-and-route its region, re-link, and emit a *partial*
    bitstream that reconfigures only that region.

    This engine makes the incremental claim real in wall-clock, not just
    in the cost model: a {!build} carries an {!incr_state} — per-stamp net
    geometry ({!Zoomie_synth.Link.link_indexed}), folded static route
    contributions ({!Zoomie_pnr.Route.cache_of_contribs}), per-partition
    frame slices and a module-digest synthesis cache — so {!recompile}
    splices the changed stamp into the linked netlist
    ({!Zoomie_synth.Link.relink_stamp}), updates the route estimate from
    cached contributions and re-merges cached frame slices instead of
    redoing the whole design.  The Figure 4 fan-out (unique-module
    synthesis, per-region placement, per-partition frame generation) runs
    on a {!Pool} of OCaml 5 domains.  Every output is bit-for-bit equal to
    {!Flow_baseline}, the seed monolithic engine, which the QCheck
    differential in [test/test_vti.ml] pins. *)

open Zoomie_rtl
open Zoomie_fabric
module Netlist = Zoomie_synth.Netlist
module Synthesize = Zoomie_synth.Synthesize
module Link = Zoomie_synth.Link
module Place = Zoomie_pnr.Place
module Sites = Zoomie_pnr.Sites
module Route = Zoomie_pnr.Route
module Timing = Zoomie_pnr.Timing
module Framegen = Zoomie_pnr.Framegen
module Cost_model = Zoomie_pnr.Cost_model
module Board = Zoomie_bitstream.Board
module Bitgen = Zoomie_vendor.Bitgen

type project = {
  device : Device.t;
  design : Design.t;
  clock_root : string;
  freq_mhz : float;
  replicated_units : string list;
      (** module names synthesized once and stamped per instance *)
  iterated : string list;
      (** instance paths the designer will recompile during debugging *)
  c : float;  (** over-provision coefficient *)
  debug_slr : int;
}

(* Per-stamp compilation artifacts, cached across incremental runs. *)
type stamp_build = {
  sb_path : string;
  sb_module : string;
  sb_netlist : Netlist.t;
  sb_stats : Synthesize.stats;
  sb_locmap : Loc.map;
  sb_clock_env : (string * string) list;
  sb_region : Region.t option;  (* Some = iterated partition *)
}

(* The delta-path caches that need the no-aliasing guarantee of
   Link.relink_stamp.  Dropped (None) when a stamp aliases shell nets;
   recompile then falls back to a full link. *)
type fast_state = {
  fs_index : Link.index;
  fs_route_cache : Route.cache;  (* shell + static stamps, folded *)
  fs_iter_contribs : (string * Route.contrib) list;  (* iterated path -> *)
}

type incr_state = {
  is_fast : fast_state option;
  is_static_frames : Framegen.frame_write list;
      (* merged frames of the shell and every static stamp *)
  is_iter_frames : (string * Framegen.frame_write list) list;
      (* iterated path -> that partition's frame slice *)
  is_synth_cache : (string, Netlist.t * Synthesize.stats) Hashtbl.t;
      (* module-body digest -> synthesis result; append-only, so builds
         sharing the table (prev and next) stay independently usable *)
}

type build = {
  project : project;
  shell_netlist : Netlist.t;
  shell_stats : Synthesize.stats;
  shell_locmap : Loc.map;
  stamps : stamp_build list;  (* in link order *)
  partition_regions : (string * Region.t) list;  (* iterated path -> region *)
  static_regions : Region.t list;
  netlist : Netlist.t;       (* linked *)
  locmap : Loc.map;          (* merged, indexes the linked netlist *)
  route : Route.stats;
  timing : Timing.report;
  frames : Framegen.frame_write list;
  bitstream : Board.bitstream;
  modeled_seconds : float;   (* this run's modeled wall clock *)
  cost : Cost_model.phase;
  incr : incr_state;
}

(* Fixed modeled cost of the final link step: loading the routed
   checkpoint of the full design and assembling the (partial) bitstream. *)
let link_overhead_s = 600.0

(* Parallel partition compiles (the Figure 4 fan-out) in the cost model;
   the measured fan-out uses Pool.default_jobs domains. *)
let parallel_jobs = 8

let demand_of netlist =
  let lut, lutram, ff, bram = Netlist.resources netlist in
  Resource.make ~lut:(lut + lutram) ~lutram ~ff ~bram ()

let payload project netlist locmap =
  {
    Board.netlist;
    locmap;
    clock_root = project.clock_root;
    freq_mhz = project.freq_mhz;
  }

(* Per-stage CPU-time attribution to stderr when ZOOMIE_VTI_TIMINGS is
   set in the environment; lets the bench harness (and a curious user)
   see where an incremental recompile spends its time. *)
let timers = Sys.getenv_opt "ZOOMIE_VTI_TIMINGS" <> None

module Obs = Zoomie_obs.Obs

(* Compile-flow observability: which path a recompile took (splice vs
   full link, synthesis cache), and how wide the Domain-pool fan-outs
   are.  The phase structure itself is traced through [timed]. *)
let obs_synth_hits = Obs.counter "vti.synth_cache_hits"
let obs_synth_misses = Obs.counter "vti.synth_cache_misses"
let obs_relink_splice = Obs.counter "vti.relink_splice"
let obs_full_link = Obs.counter "vti.full_link"
let obs_pool_depth = Obs.gauge "vti.pool_queue_depth"

(* Every timed phase is also a trace span, so `zoomie --trace` shows the
   recompile pipeline without the env var. *)
let timed name f =
  Obs.span ~cat:"vti" ("vti." ^ name) (fun () ->
      if not timers then f ()
      else begin
        let t0 = Sys.time () in
        let r = f () in
        Printf.eprintf "[vti] %-24s %7.2fs\n%!" name (Sys.time () -. t0);
        r
      end)

(* Pool fan-out, with the submitted array length recorded as the queue
   depth (from the calling domain only — workers never touch obs). *)
let pool_map ?jobs f a =
  Obs.max_gauge obs_pool_depth (float_of_int (Array.length a));
  Pool.map_array ?jobs f a

let stamped_of sb =
  {
    Link.st_path = sb.sb_path;
    st_netlist = sb.sb_netlist;
    st_clock_env = sb.sb_clock_env;
  }

let merged_locmap ~shell_locmap ~stamps =
  Place.concat_locmaps (shell_locmap :: List.map (fun sb -> sb.sb_locmap) stamps)

(* One-allocation array splice: [prev_arr] with the [old_len] elements at
   [lo] replaced by [new_seg]. *)
let splice_array (prev_arr : 'a array) ~lo ~old_len (new_seg : 'a array) =
  let tail = Array.length prev_arr - lo - old_len in
  let nlen = Array.length new_seg in
  let total = lo + nlen + tail in
  if total = 0 then [||]
  else begin
    let dummy = if nlen > 0 then new_seg.(0) else prev_arr.(0) in
    let r = Array.make total dummy in
    Array.blit prev_arr 0 r 0 lo;
    Array.blit new_seg 0 r lo nlen;
    Array.blit prev_arr (lo + old_len) r (lo + nlen) tail;
    r
  end

(* The merged locmap after one stamp's re-place: splice the new segment
   into the previous merged map instead of re-concatenating all ~5400
   segments.  Equal to [merged_locmap] over the updated stamp list
   because concatenation is segment-wise. *)
let spliced_locmap ~(prev : Loc.map) ~shell_locmap ~old_stamps ~path
    ~(new_locmap : Loc.map) =
  let seg_maps =
    Array.of_list
      (shell_locmap :: List.map (fun sb -> sb.sb_locmap) old_stamps)
  in
  let k =
    let r = ref (-1) in
    List.iteri (fun i sb -> if sb.sb_path = path then r := i + 1) old_stamps;
    !r
  in
  let splice count prev_arr new_seg =
    let lo = ref 0 in
    for j = 0 to k - 1 do
      lo := !lo + count seg_maps.(j)
    done;
    splice_array prev_arr ~lo:!lo ~old_len:(count seg_maps.(k)) new_seg
  in
  {
    Loc.ff_sites =
      splice
        (fun m -> Array.length m.Loc.ff_sites)
        prev.Loc.ff_sites new_locmap.Loc.ff_sites;
    lut_sites =
      splice
        (fun m -> Array.length m.Loc.lut_sites)
        prev.Loc.lut_sites new_locmap.Loc.lut_sites;
    mem_placements =
      splice
        (fun m -> Array.length m.Loc.mem_placements)
        prev.Loc.mem_placements new_locmap.Loc.mem_placements;
    dsp_sites =
      splice
        (fun m -> Array.length m.Loc.dsp_sites)
        prev.Loc.dsp_sites new_locmap.Loc.dsp_sites;
  }

(* Modeled compile phases for one component. *)
let component_cost ~gate_nodes ~cells ~utilization ~wirelength ~congestion ~frames =
  Cost_model.compile ~gate_nodes ~cells ~utilization ~wirelength ~congestion
    ~frames

(* Combine parallel partition costs: wall = max(static, slowest partition)
   approximated as static + partitions/jobs. *)
let parallel_wall ~static_s ~partition_s =
  let spread = List.fold_left ( +. ) 0.0 partition_s /. float_of_int parallel_jobs in
  let slowest = List.fold_left max 0.0 partition_s in
  max static_s (max slowest spread) +. (0.03 *. static_s)
(* 3%: the partition-constraint overhead VTI pays on the static region. *)

let device_util project netlist =
  let used = Place.resources_of_netlist netlist in
  let cap = Device.resources project.device in
  List.fold_left
    (fun acc k ->
      let c = Resource.get cap k in
      if c = 0 then acc
      else Float.max acc (float_of_int (Resource.get used k) /. float_of_int c))
    0.0 Resource.all_kinds

(* Timing via the flat-array evaluator, falling back to the seed DFS on
   the graphs (multi-driven nets, combinational cycles) where the DFS
   order is load-bearing.  Both produce identical reports elsewhere. *)
let analyze_timing ~congestion ~utilization netlist locmap =
  match Timing.analyze_fast ~congestion ~utilization netlist locmap with
  | Some r -> r
  | None -> Timing.analyze ~congestion ~utilization netlist locmap

(* Content hash of a module body.  Sound as a synthesis-cache key within
   one build lineage: Hier.synth_module output depends on the circuit and
   on the modules it instantiates, and the latter never change across
   recompiles (recompile always submits the changed module itself). *)
let circuit_digest (c : Circuit.t) = Digest.string (Marshal.to_string c [])

(* Per-segment route contributions (shell first, then stamps in link
   order).  Shell-aliasing safe: both the shell segment and the stamp
   boundary maps key nets by their final (root) shell id. *)
let route_contribs ?jobs ~index ~shell_netlist ~shell_locmap stamps =
  let seg = Array.of_list stamps in
  pool_map ?jobs
    (fun i ->
      if i = 0 then
        Route.contrib_of ~shell_remap:(Link.shell_remap index) shell_netlist
          shell_locmap
      else
        let sb = seg.(i - 1) in
        Route.contrib_of
          ~bmap:(Link.stamp_bmap index (i - 1))
          sb.sb_netlist sb.sb_locmap)
    (Array.init (1 + Array.length seg) Fun.id)

(* Split per-segment contributions into the folded static cache and the
   per-iterated-stamp list the recompile path swaps entries of. *)
let route_cache_of ~nshell ~contribs stamps =
  let static = ref [ contribs.(0) ] and iter = ref [] in
  List.iteri
    (fun i sb ->
      match sb.sb_region with
      | None -> static := contribs.(i + 1) :: !static
      | Some _ -> iter := (sb.sb_path, contribs.(i + 1)) :: !iter)
    stamps;
  let cache = Route.cache_of_contribs ~nshell (List.rev !static) in
  (cache, List.rev !iter)

(* Per-segment frame slices, merged into the cached static set and the
   per-iterated-partition list.  Exact: framegen only reads truth tables,
   FF inits and placements, never net ids, and site allocations are
   disjoint across segments. *)
let frame_slices ?jobs ~shell_netlist ~shell_locmap stamps =
  let seg = Array.of_list stamps in
  let slices =
    pool_map ?jobs
      (fun i ->
        if i = 0 then Framegen.generate shell_netlist shell_locmap
        else Framegen.generate seg.(i - 1).sb_netlist seg.(i - 1).sb_locmap)
      (Array.init (1 + Array.length seg) Fun.id)
  in
  let static = ref [ slices.(0) ] and iter = ref [] in
  List.iteri
    (fun i sb ->
      match sb.sb_region with
      | None -> static := slices.(i + 1) :: !static
      | Some _ -> iter := (sb.sb_path, slices.(i + 1)) :: !iter)
    stamps;
  (Framegen.merge (List.rev !static), List.rev !iter)

(** Initial (from-scratch) VTI compile.  [jobs] caps the domain fan-out
    (default {!Pool.default_jobs}); results are independent of it. *)
let compile ?jobs (project : project) : build =
  let shell_circuit, bbs =
    Flat.elaborate_shell project.design ~units:project.replicated_units
  in
  (* Unique modules, first-occurrence order. *)
  let uniq = Hashtbl.create 8 in
  let modules =
    List.filter_map
      (fun (bb : Flat.blackbox) ->
        if Hashtbl.mem uniq bb.Flat.bb_module then None
        else begin
          Hashtbl.add uniq bb.Flat.bb_module ();
          Some bb.Flat.bb_module
        end)
      bbs
    |> Array.of_list
  in
  (* Shell synthesis and one synthesis per unique module — the Figure 4
     fan-out, on real domains.  Task 0 is the shell. *)
  let synth_results =
    timed "synth fan-out" (fun () ->
        pool_map ?jobs
          (fun i ->
            if i = 0 then `Shell (Synthesize.run shell_circuit)
            else
              `Unit (Zoomie_synth.Hier.synth_module project.design modules.(i - 1)))
          (Array.init (1 + Array.length modules) Fun.id))
  in
  let shell_netlist, shell_stats =
    match synth_results.(0) with `Shell r -> r | `Unit _ -> assert false
  in
  let cache = Hashtbl.create 8 in
  Array.iteri
    (fun i r ->
      if i > 0 then
        match r with
        | `Unit r -> Hashtbl.add cache modules.(i - 1) r
        | `Shell _ -> assert false)
    synth_results;
  (* Seed the content-hash synthesis cache so a recompile that submits an
     unchanged module body skips synthesis entirely. *)
  let synth_cache = Hashtbl.create 8 in
  Array.iter
    (fun m ->
      Hashtbl.replace synth_cache
        (circuit_digest (Design.find project.design m))
        (Hashtbl.find cache m))
    modules;
  (* Provision regions for iterated instances. *)
  let bb_by_path = Hashtbl.create (List.length bbs) in
  List.iter
    (fun (bb : Flat.blackbox) ->
      if not (Hashtbl.mem bb_by_path bb.Flat.bb_path) then
        Hashtbl.add bb_by_path bb.Flat.bb_path bb)
    bbs;
  let demands =
    List.map
      (fun path ->
        match Hashtbl.find_opt bb_by_path path with
        | None ->
          invalid_arg
            (Printf.sprintf "Vti: iterated path %S is not a replicated instance" path)
        | Some bb ->
          let nl, _ = Hashtbl.find cache bb.Flat.bb_module in
          (path, demand_of nl))
      project.iterated
  in
  let partition_regions, static_regions =
    Estimate.provision project.device ~c:project.c ~debug_slr:project.debug_slr
      demands
  in
  let region_by_path = Hashtbl.create 16 in
  List.iter
    (fun (path, r) ->
      if not (Hashtbl.mem region_by_path path) then
        Hashtbl.add region_by_path path r)
    partition_regions;
  (* Placement: static allocator shared by shell + static stamps (state
     threads through in list order, so those stay sequential); iterated
     stamps each place alone in a private region — embarrassingly
     parallel. *)
  let static_alloc = Sites.create project.device static_regions in
  let shell_place =
    timed "place shell" (fun () ->
        Place.run_with_allocator static_alloc ~regions:static_regions
          shell_netlist)
  in
  let iter_locmaps =
    let iter_bbs =
      Array.of_list
        (List.filter
           (fun (bb : Flat.blackbox) -> Hashtbl.mem region_by_path bb.Flat.bb_path)
           bbs)
    in
    let placed =
      pool_map ?jobs
        (fun (bb : Flat.blackbox) ->
          let nl, _ = Hashtbl.find cache bb.Flat.bb_module in
          let r = Hashtbl.find region_by_path bb.Flat.bb_path in
          (bb.Flat.bb_path, (Place.run project.device ~regions:[ r ] nl).Place.locmap))
        iter_bbs
    in
    let t = Hashtbl.create 16 in
    Array.iter (fun (p, lm) -> Hashtbl.replace t p lm) placed;
    t
  in
  let stamps =
    List.map
      (fun (bb : Flat.blackbox) ->
        let nl, stats = Hashtbl.find cache bb.Flat.bb_module in
        let region = Hashtbl.find_opt region_by_path bb.Flat.bb_path in
        let locmap =
          match region with
          | Some _ -> Hashtbl.find iter_locmaps bb.Flat.bb_path
          | None ->
            (Place.run_with_allocator static_alloc ~regions:static_regions nl)
              .Place.locmap
        in
        {
          sb_path = bb.Flat.bb_path;
          sb_module = bb.Flat.bb_module;
          sb_netlist = nl;
          sb_stats = stats;
          sb_locmap = locmap;
          sb_clock_env = bb.Flat.bb_clock_env;
          sb_region = region;
        })
      bbs
  in
  let netlist, index =
    timed "link" (fun () ->
        Link.link_indexed ~shell:shell_netlist (List.map stamped_of stamps))
  in
  let locmap = merged_locmap ~shell_locmap:shell_place.Place.locmap ~stamps in
  let route, fast =
    timed "route" @@ fun () ->
    let contribs =
      route_contribs ?jobs ~index ~shell_netlist
        ~shell_locmap:shell_place.Place.locmap stamps
    in
    let cache, iter =
      route_cache_of ~nshell:shell_netlist.Netlist.num_nets ~contribs stamps
    in
    let route =
      Route.stats_of_cache cache (List.map snd iter)
        ~cells:(Netlist.num_cells netlist)
    in
    ( route,
      Some { fs_index = index; fs_route_cache = cache; fs_iter_contribs = iter }
    )
  in
  let util = device_util project netlist in
  let timing =
    analyze_timing ~congestion:route.Route.congestion ~utilization:util netlist
      locmap
  in
  let static_frames, iter_frames =
    timed "frames" (fun () ->
        frame_slices ?jobs ~shell_netlist ~shell_locmap:shell_place.Place.locmap
          stamps)
  in
  let frames = Framegen.merge (static_frames :: List.map snd iter_frames) in
  let bitstream =
    Bitgen.full project.device ~frames ~payload:(payload project netlist locmap)
  in
  (* --- modeled cost --- *)
  let total_cells = Netlist.num_cells netlist in
  let iterated_tbl = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace iterated_tbl p ()) project.iterated;
  let partition_costs =
    List.filter_map
      (fun sb ->
        match sb.sb_region with
        | None -> None
        | Some r ->
          let cells = Netlist.num_cells sb.sb_netlist in
          let share = float_of_int cells /. float_of_int (max 1 total_cells) in
          Some
            (Cost_model.total
               (component_cost
                  ~gate_nodes:sb.sb_stats.Synthesize.gate_nodes ~cells
                  ~utilization:(1.0 /. (1.0 +. project.c))
                  ~wirelength:
                    (int_of_float (share *. float_of_int route.Route.total_wirelength))
                  ~congestion:route.Route.congestion
                  ~frames:(Region.frame_count (Device.slr project.device r.Region.slr).Device.layout r))))
      stamps
  in
  (* Static component: everything not in an iterated partition, compiled
     monolithically (cost basis: as-if-flat totals). *)
  let static_gate_nodes =
    shell_stats.Synthesize.gate_nodes
    + List.fold_left
        (fun acc sb ->
          if Hashtbl.mem iterated_tbl sb.sb_path then acc
          else acc + sb.sb_stats.Synthesize.gate_nodes)
        0 stamps
  in
  let static_cells =
    total_cells
    - List.fold_left
        (fun acc sb ->
          if Hashtbl.mem iterated_tbl sb.sb_path then
            acc + Netlist.num_cells sb.sb_netlist
          else acc)
        0 stamps
  in
  let static_cost =
    component_cost ~gate_nodes:static_gate_nodes ~cells:static_cells
      ~utilization:0.95 ~wirelength:route.Route.total_wirelength
      ~congestion:route.Route.congestion ~frames:(List.length frames)
  in
  let wall =
    Cost_model.tool_startup_s
    +. parallel_wall
         ~static_s:(Cost_model.total static_cost)
         ~partition_s:partition_costs
    +. link_overhead_s
  in
  {
    project;
    shell_netlist;
    shell_stats;
    shell_locmap = shell_place.Place.locmap;
    stamps;
    partition_regions;
    static_regions;
    netlist;
    locmap;
    route;
    timing;
    frames;
    bitstream;
    modeled_seconds = wall;
    cost = static_cost;
    incr =
      {
        is_fast = fast;
        is_static_frames = static_frames;
        is_iter_frames = iter_frames;
        is_synth_cache = synth_cache;
      };
  }

exception Partition_overflow of string

(** Incremental recompile: the designer changed the RTL of the iterated
    instance at [path]; [circuit] is the new module body (it may grow, as
    long as it still fits the provisioned region).  Everything outside the
    partition is reused from [prev]: the linked netlist is spliced, the
    route estimate re-folded from cached contributions, and only the
    changed partition's frames regenerate.  [prev] itself stays fully
    usable afterwards (every cache update is functional or append-only) —
    in particular after a {!Partition_overflow}. *)
let recompile (prev : build) ~path ~(circuit : Circuit.t) : build =
  let rc_t0 = Sys.time () in
  let project = prev.project in
  let region =
    match List.assoc_opt path prev.partition_regions with
    | Some r -> r
    | None ->
      invalid_arg (Printf.sprintf "Vti.recompile: %S is not an iterated partition" path)
  in
  (* Re-synthesize just the changed module — or reuse the digest-matched
     result of an earlier run with the same body. *)
  let new_netlist, new_stats =
    timed "synth" (fun () ->
        let digest = circuit_digest circuit in
        match Hashtbl.find_opt prev.incr.is_synth_cache digest with
        | Some r ->
          Obs.incr obs_synth_hits;
          r
        | None ->
          Obs.incr obs_synth_misses;
          let design = Design.add_module (Design.copy project.design) circuit in
          let r = Zoomie_synth.Hier.synth_module design circuit.Circuit.name in
          Hashtbl.replace prev.incr.is_synth_cache digest r;
          r)
  in
  (* Check the provision still holds: ER with the configured coefficient. *)
  let layout = (Device.slr project.device region.Region.slr).Device.layout in
  let capacity = Region.resources layout region in
  if not (Resource.fits ~demand:(demand_of new_netlist) ~capacity) then
    raise
      (Partition_overflow
         (Fmt.str "partition %s no longer fits %a" path Region.pp region));
  (* Re-place inside the private region only. *)
  let new_locmap =
    timed "place" (fun () ->
        (Place.run project.device ~regions:[ region ] new_netlist).Place.locmap)
  in
  let stamps =
    List.map
      (fun sb ->
        if sb.sb_path = path then
          {
            sb with
            sb_module = circuit.Circuit.name;
            sb_netlist = new_netlist;
            sb_stats = new_stats;
            sb_locmap = new_locmap;
          }
        else sb)
      prev.stamps
  in
  let replacement =
    let sb = List.find (fun sb -> sb.sb_path = path) stamps in
    stamped_of sb
  in
  (* Link: splice the one changed stamp when the delta path is available,
     otherwise redo the full link (and rebuild the caches). *)
  let spliced =
    timed "relink (splice)" (fun () ->
        match prev.incr.is_fast with
        | None -> None
        | Some fs -> (
          match
            Link.relink_stamp ~shell:prev.shell_netlist ~prev:prev.netlist
              ~index:fs.fs_index
              ~old_stamps:(List.map stamped_of prev.stamps)
              ~replacement
          with
          | None -> None
          | Some (netlist, index') -> Some (fs, netlist, index')))
  in
  if timers && spliced = None then
    Printf.eprintf "[vti] splice unavailable -> full link fallback\n%!";
  Obs.incr (if spliced = None then obs_full_link else obs_relink_splice);
  let netlist, route, fast =
    match spliced with
    | Some (fs, netlist, index') ->
      let k =
        let r = ref (-1) in
        List.iteri (fun i sb -> if sb.sb_path = path then r := i) stamps;
        !r
      in
      let new_contrib =
        timed "route contrib" (fun () ->
            Route.contrib_of ~bmap:(Link.stamp_bmap index' k) new_netlist
              new_locmap)
      in
      let iter =
        List.map
          (fun (p, c) -> if p = path then (p, new_contrib) else (p, c))
          fs.fs_iter_contribs
      in
      let route =
        timed "route fold" (fun () ->
            Route.stats_of_cache fs.fs_route_cache (List.map snd iter)
              ~cells:(Netlist.num_cells netlist))
      in
      ( netlist,
        route,
        Some { fs with fs_index = index'; fs_iter_contribs = iter } )
    | None ->
      let netlist, index =
        Link.link_indexed ~shell:prev.shell_netlist (List.map stamped_of stamps)
      in
      let contribs =
        route_contribs ~index ~shell_netlist:prev.shell_netlist
          ~shell_locmap:prev.shell_locmap stamps
      in
      let cache, iter =
        route_cache_of ~nshell:prev.shell_netlist.Netlist.num_nets ~contribs
          stamps
      in
      let route =
        Route.stats_of_cache cache (List.map snd iter)
          ~cells:(Netlist.num_cells netlist)
      in
      ( netlist,
        route,
        Some
          { fs_index = index; fs_route_cache = cache; fs_iter_contribs = iter }
      )
  in
  let locmap =
    timed "locmap splice" (fun () ->
        spliced_locmap ~prev:prev.locmap ~shell_locmap:prev.shell_locmap
          ~old_stamps:prev.stamps ~path ~new_locmap)
  in
  let util = timed "util" (fun () -> device_util project netlist) in
  let timing =
    timed "timing" (fun () ->
        analyze_timing ~congestion:route.Route.congestion ~utilization:util
          netlist locmap)
  in
  (* Frames: regenerate the changed partition's slice, re-merge with the
     cached static set and the other partitions' cached slices. *)
  let new_slice =
    timed "framegen slice" (fun () -> Framegen.generate new_netlist new_locmap)
  in
  let iter_frames =
    List.map
      (fun (p, f) -> if p = path then (p, new_slice) else (p, f))
      prev.incr.is_iter_frames
  in
  let frames =
    timed "frame merge" (fun () ->
        Framegen.merge (prev.incr.is_static_frames :: List.map snd iter_frames))
  in
  (* Partial bitstream: only the partition's frames. *)
  let partial_frames =
    timed "partial filter" (fun () ->
        List.filter
          (fun (fw : Framegen.frame_write) ->
            let row, col, _ = fw.Framegen.fw_key in
            Region.contains region ~slr:fw.Framegen.fw_slr ~row ~col)
          frames)
  in
  let bitstream =
    timed "bitgen partial" (fun () ->
        Bitgen.partial project.device ~frames:partial_frames ~dynamic:[ region ]
          ~payload:(payload project netlist locmap))
  in
  (* Modeled incremental cost: the partition alone, plus startup + link. *)
  let cells = Netlist.num_cells new_netlist in
  let share = float_of_int cells /. float_of_int (max 1 (Netlist.num_cells netlist)) in
  let part_cost =
    component_cost ~gate_nodes:new_stats.Synthesize.gate_nodes ~cells
      ~utilization:(1.0 /. (1.0 +. project.c))
      ~wirelength:(int_of_float (share *. float_of_int route.Route.total_wirelength))
      ~congestion:route.Route.congestion
      ~frames:(List.length partial_frames)
  in
  let wall =
    Cost_model.tool_startup_s +. Cost_model.total part_cost +. link_overhead_s
  in
  if timers then
    Printf.eprintf "[vti] %-24s %7.2fs\n%!" "TOTAL (cpu)" (Sys.time () -. rc_t0);
  {
    prev with
    stamps;
    netlist;
    locmap;
    route;
    timing;
    frames;
    bitstream;
    modeled_seconds = wall;
    cost = part_cost;
    incr =
      {
        prev.incr with
        is_fast = fast;
        is_iter_frames = iter_frames;
      };
  }

(** Program the board (full or partial, as the build dictates). *)
let load_onto board (b : build) = Board.load board b.bitstream

(* --- checkpoint persistence ------------------------------------------ *)

let checkpoint_magic = "ZOOMIE-DCP-2"

let checkpoint_version = 2

(* A marshaled build is only readable by a compatible runtime: guard the
   raw Marshal payload with the OCaml version, word size and the build
   record's layout generation so a foreign checkpoint fails loudly
   instead of segfaulting. *)
let checkpoint_fingerprint =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [ Sys.ocaml_version; string_of_int Sys.word_size; "vti-build-v2" ]))

(** Persist a build (the routed "design checkpoint") so debugging sessions
    can resume incremental iteration across tool restarts. *)
let save_checkpoint (b : build) path =
  let oc = open_out_bin path in
  output_string oc checkpoint_magic;
  Marshal.to_channel oc (checkpoint_version, checkpoint_fingerprint) [];
  Marshal.to_channel oc b [];
  close_out oc

exception Bad_checkpoint of string

let load_checkpoint path : build =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Bad_checkpoint msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        let magic = really_input_string ic (String.length checkpoint_magic) in
        if magic <> checkpoint_magic then raise (Bad_checkpoint "bad magic");
        let version, fingerprint = (Marshal.from_channel ic : int * string) in
        if version <> checkpoint_version then
          raise
            (Bad_checkpoint
               (Printf.sprintf "checkpoint format version %d, expected %d"
                  version checkpoint_version));
        if fingerprint <> checkpoint_fingerprint then
          raise
            (Bad_checkpoint "stale checkpoint: toolchain fingerprint mismatch");
        (Marshal.from_channel ic : build)
      with
      | Bad_checkpoint _ as e -> raise e
      | End_of_file -> raise (Bad_checkpoint "truncated checkpoint")
      | Failure msg -> raise (Bad_checkpoint ("unreadable checkpoint: " ^ msg)))
