(** The seed (monolithic) VTI flow, kept as the differential oracle for the
    incremental engine in {!Flow}: every [recompile] here redoes the full
    link / route / timing / framegen over all stamps, which is exactly the
    "from-scratch" computation the incremental path must match bit-for-bit.

    Compilation unit: partition.  Optimization: partition-local.  Linking:
    after routing.  The designer declares which instances they will iterate
    on; each gets an over-provisioned private region inside the debug SLR,
    everything else is compiled into the static region.  Incremental
    recompiles touch exactly one partition: re-synthesize the changed
    module, re-place-and-route its region, re-link, and emit a *partial*
    bitstream that reconfigures only that region. *)

open Zoomie_rtl
open Zoomie_fabric
module Netlist = Zoomie_synth.Netlist
module Synthesize = Zoomie_synth.Synthesize
module Link = Zoomie_synth.Link
module Place = Zoomie_pnr.Place
module Sites = Zoomie_pnr.Sites
module Route = Zoomie_pnr.Route
module Timing = Zoomie_pnr.Timing
module Framegen = Zoomie_pnr.Framegen
module Cost_model = Zoomie_pnr.Cost_model
module Board = Zoomie_bitstream.Board
module Bitgen = Zoomie_vendor.Bitgen

type project = {
  device : Device.t;
  design : Design.t;
  clock_root : string;
  freq_mhz : float;
  replicated_units : string list;
      (** module names synthesized once and stamped per instance *)
  iterated : string list;
      (** instance paths the designer will recompile during debugging *)
  c : float;  (** over-provision coefficient *)
  debug_slr : int;
}

(* Per-stamp compilation artifacts, cached across incremental runs. *)
type stamp_build = {
  sb_path : string;
  sb_module : string;
  sb_netlist : Netlist.t;
  sb_stats : Synthesize.stats;
  sb_locmap : Loc.map;
  sb_clock_env : (string * string) list;
  sb_region : Region.t option;  (* Some = iterated partition *)
}

type build = {
  project : project;
  shell_netlist : Netlist.t;
  shell_stats : Synthesize.stats;
  shell_locmap : Loc.map;
  stamps : stamp_build list;  (* in link order *)
  partition_regions : (string * Region.t) list;  (* iterated path -> region *)
  static_regions : Region.t list;
  netlist : Netlist.t;       (* linked *)
  locmap : Loc.map;          (* merged, indexes the linked netlist *)
  route : Route.stats;
  timing : Timing.report;
  frames : Framegen.frame_write list;
  bitstream : Board.bitstream;
  modeled_seconds : float;   (* this run's modeled wall clock *)
  cost : Cost_model.phase;
}

(* Fixed modeled cost of the final link step: loading the routed
   checkpoint of the full design and assembling the (partial) bitstream. *)
let link_overhead_s = 600.0

(* Parallel partition compiles (the Figure 4 fan-out). *)
let parallel_jobs = 8

let demand_of netlist =
  let lut, lutram, ff, bram = Netlist.resources netlist in
  Resource.make ~lut:(lut + lutram) ~lutram ~ff ~bram ()

let payload project netlist locmap =
  {
    Board.netlist;
    locmap;
    clock_root = project.clock_root;
    freq_mhz = project.freq_mhz;
  }

(* Link everything and produce reports + full frame set. *)
let relink project ~shell_netlist ~stamps =
  let netlist =
    Link.link ~shell:shell_netlist
      (List.map
         (fun sb ->
           {
             Link.st_path = sb.sb_path;
             st_netlist = sb.sb_netlist;
             st_clock_env = sb.sb_clock_env;
           })
         stamps)
  in
  ignore project;
  netlist

let merged_locmap ~shell_locmap ~stamps =
  Place.concat_locmaps (shell_locmap :: List.map (fun sb -> sb.sb_locmap) stamps)

(* Modeled compile phases for one component. *)
let component_cost ~gate_nodes ~cells ~utilization ~wirelength ~congestion ~frames =
  Cost_model.compile ~gate_nodes ~cells ~utilization ~wirelength ~congestion
    ~frames

(* Combine parallel partition costs: wall = max(static, slowest partition)
   approximated as static + partitions/jobs. *)
let parallel_wall ~static_s ~partition_s =
  let spread = List.fold_left ( +. ) 0.0 partition_s /. float_of_int parallel_jobs in
  let slowest = List.fold_left max 0.0 partition_s in
  max static_s (max slowest spread) +. (0.03 *. static_s)
(* 3%: the partition-constraint overhead VTI pays on the static region. *)

(** Initial (from-scratch) VTI compile. *)
let compile (project : project) : build =
  let shell_circuit, bbs =
    Flat.elaborate_shell project.design ~units:project.replicated_units
  in
  let shell_netlist, shell_stats = Synthesize.run shell_circuit in
  (* One synthesis per unique module. *)
  let cache = Hashtbl.create 8 in
  List.iter
    (fun (bb : Flat.blackbox) ->
      if not (Hashtbl.mem cache bb.Flat.bb_module) then
        Hashtbl.add cache bb.Flat.bb_module
          (Zoomie_synth.Hier.synth_module project.design bb.Flat.bb_module))
    bbs;
  (* Provision regions for iterated instances. *)
  let demands =
    List.map
      (fun path ->
        match List.find_opt (fun (bb : Flat.blackbox) -> bb.Flat.bb_path = path) bbs with
        | None ->
          invalid_arg
            (Printf.sprintf "Vti: iterated path %S is not a replicated instance" path)
        | Some bb ->
          let nl, _ = Hashtbl.find cache bb.Flat.bb_module in
          (path, demand_of nl))
      project.iterated
  in
  let partition_regions, static_regions =
    Estimate.provision project.device ~c:project.c ~debug_slr:project.debug_slr
      demands
  in
  (* Placement: static allocator shared by shell + static stamps; iterated
     stamps in their own regions. *)
  let static_alloc = Sites.create project.device static_regions in
  let shell_place =
    Place.run_with_allocator static_alloc ~regions:static_regions shell_netlist
  in
  let stamps =
    List.map
      (fun (bb : Flat.blackbox) ->
        let nl, stats = Hashtbl.find cache bb.Flat.bb_module in
        let region = List.assoc_opt bb.Flat.bb_path partition_regions in
        let locmap =
          match region with
          | Some r ->
            (Place.run project.device ~regions:[ r ] nl).Place.locmap
          | None ->
            (Place.run_with_allocator static_alloc ~regions:static_regions nl)
              .Place.locmap
        in
        {
          sb_path = bb.Flat.bb_path;
          sb_module = bb.Flat.bb_module;
          sb_netlist = nl;
          sb_stats = stats;
          sb_locmap = locmap;
          sb_clock_env = bb.Flat.bb_clock_env;
          sb_region = region;
        })
      bbs
  in
  let netlist = relink project ~shell_netlist ~stamps in
  let locmap = merged_locmap ~shell_locmap:shell_place.Place.locmap ~stamps in
  let route = Route.estimate netlist locmap in
  let device_util =
    let used = Place.resources_of_netlist netlist in
    let cap = Device.resources project.device in
    List.fold_left
      (fun acc k ->
        let c = Resource.get cap k in
        if c = 0 then acc
        else Float.max acc (float_of_int (Resource.get used k) /. float_of_int c))
      0.0 Resource.all_kinds
  in
  let timing =
    Timing.analyze ~congestion:route.Route.congestion ~utilization:device_util
      netlist locmap
  in
  let frames = Framegen.generate netlist locmap in
  let bitstream =
    Bitgen.full project.device ~frames ~payload:(payload project netlist locmap)
  in
  (* --- modeled cost --- *)
  let total_cells = Netlist.num_cells netlist in
  let iterated_paths = project.iterated in
  let partition_costs =
    List.filter_map
      (fun sb ->
        match sb.sb_region with
        | None -> None
        | Some r ->
          let cells = Netlist.num_cells sb.sb_netlist in
          let share = float_of_int cells /. float_of_int (max 1 total_cells) in
          Some
            (Cost_model.total
               (component_cost
                  ~gate_nodes:sb.sb_stats.Synthesize.gate_nodes ~cells
                  ~utilization:(1.0 /. (1.0 +. project.c))
                  ~wirelength:
                    (int_of_float (share *. float_of_int route.Route.total_wirelength))
                  ~congestion:route.Route.congestion
                  ~frames:(Region.frame_count (Device.slr project.device r.Region.slr).Device.layout r))))
      stamps
  in
  (* Static component: everything not in an iterated partition, compiled
     monolithically (cost basis: as-if-flat totals). *)
  let static_gate_nodes =
    shell_stats.Synthesize.gate_nodes
    + List.fold_left
        (fun acc sb ->
          if List.mem sb.sb_path iterated_paths then acc
          else acc + sb.sb_stats.Synthesize.gate_nodes)
        0 stamps
  in
  let static_cells =
    total_cells
    - List.fold_left
        (fun acc sb ->
          if List.mem sb.sb_path iterated_paths then
            acc + Netlist.num_cells sb.sb_netlist
          else acc)
        0 stamps
  in
  let static_cost =
    component_cost ~gate_nodes:static_gate_nodes ~cells:static_cells
      ~utilization:0.95 ~wirelength:route.Route.total_wirelength
      ~congestion:route.Route.congestion ~frames:(List.length frames)
  in
  let wall =
    Cost_model.tool_startup_s
    +. parallel_wall
         ~static_s:(Cost_model.total static_cost)
         ~partition_s:partition_costs
    +. link_overhead_s
  in
  {
    project;
    shell_netlist;
    shell_stats;
    shell_locmap = shell_place.Place.locmap;
    stamps;
    partition_regions;
    static_regions;
    netlist;
    locmap;
    route;
    timing;
    frames;
    bitstream;
    modeled_seconds = wall;
    cost = static_cost;
  }

exception Partition_overflow of string

(** Incremental recompile: the designer changed the RTL of the iterated
    instance at [path]; [circuit] is the new module body (it may grow, as
    long as it still fits the provisioned region).  Everything outside the
    partition is reused from [prev]. *)
let recompile (prev : build) ~path ~(circuit : Circuit.t) : build =
  let project = prev.project in
  let region =
    match List.assoc_opt path prev.partition_regions with
    | Some r -> r
    | None ->
      invalid_arg (Printf.sprintf "Vti.recompile: %S is not an iterated partition" path)
  in
  (* Re-synthesize just the changed module. *)
  let design = Design.add_module (Design.copy project.design) circuit in
  let new_netlist, new_stats =
    Zoomie_synth.Hier.synth_module design circuit.Circuit.name
  in
  (* Check the provision still holds: ER with the configured coefficient. *)
  let layout = (Device.slr project.device region.Region.slr).Device.layout in
  let capacity = Region.resources layout region in
  if not (Resource.fits ~demand:(demand_of new_netlist) ~capacity) then
    raise
      (Partition_overflow
         (Fmt.str "partition %s no longer fits %a" path Region.pp region));
  (* Re-place inside the private region only. *)
  let new_locmap =
    (Place.run project.device ~regions:[ region ] new_netlist).Place.locmap
  in
  let stamps =
    List.map
      (fun sb ->
        if sb.sb_path = path then
          {
            sb with
            sb_module = circuit.Circuit.name;
            sb_netlist = new_netlist;
            sb_stats = new_stats;
            sb_locmap = new_locmap;
          }
        else sb)
      prev.stamps
  in
  let netlist = relink project ~shell_netlist:prev.shell_netlist ~stamps in
  let locmap = merged_locmap ~shell_locmap:prev.shell_locmap ~stamps in
  let route = Route.estimate netlist locmap in
  let device_util =
    let used = Place.resources_of_netlist netlist in
    let cap = Device.resources project.device in
    List.fold_left
      (fun acc k ->
        let c = Resource.get cap k in
        if c = 0 then acc
        else Float.max acc (float_of_int (Resource.get used k) /. float_of_int c))
      0.0 Resource.all_kinds
  in
  let timing =
    Timing.analyze ~congestion:route.Route.congestion ~utilization:device_util
      netlist locmap
  in
  let frames = Framegen.generate netlist locmap in
  (* Partial bitstream: only the partition's frames. *)
  let partial_frames =
    List.filter
      (fun (fw : Framegen.frame_write) ->
        let row, col, _ = fw.Framegen.fw_key in
        Region.contains region ~slr:fw.Framegen.fw_slr ~row ~col)
      frames
  in
  let bitstream =
    Bitgen.partial project.device ~frames:partial_frames ~dynamic:[ region ]
      ~payload:(payload project netlist locmap)
  in
  (* Modeled incremental cost: the partition alone, plus startup + link. *)
  let cells = Netlist.num_cells new_netlist in
  let share = float_of_int cells /. float_of_int (max 1 (Netlist.num_cells netlist)) in
  let part_cost =
    component_cost ~gate_nodes:new_stats.Synthesize.gate_nodes ~cells
      ~utilization:(1.0 /. (1.0 +. project.c))
      ~wirelength:(int_of_float (share *. float_of_int route.Route.total_wirelength))
      ~congestion:route.Route.congestion
      ~frames:(List.length partial_frames)
  in
  let wall =
    Cost_model.tool_startup_s +. Cost_model.total part_cost +. link_overhead_s
  in
  {
    prev with
    stamps;
    netlist;
    locmap;
    route;
    timing;
    frames;
    bitstream;
    modeled_seconds = wall;
    cost = part_cost;
  }

(** Program the board (full or partial, as the build dictates). *)
let load_onto board (b : build) = Board.load board b.bitstream

(* --- checkpoint persistence ------------------------------------------ *)

let checkpoint_magic = "ZOOMIE-DCP-1"

(** Persist a build (the routed "design checkpoint") so debugging sessions
    can resume incremental iteration across tool restarts. *)
let save_checkpoint (b : build) path =
  let oc = open_out_bin path in
  output_string oc checkpoint_magic;
  Marshal.to_channel oc b [];
  close_out oc

exception Bad_checkpoint of string

let load_checkpoint path : build =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Bad_checkpoint msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        let magic = really_input_string ic (String.length checkpoint_magic) in
        if magic <> checkpoint_magic then raise (Bad_checkpoint "bad magic");
        (Marshal.from_channel ic : build)
      with
      | Bad_checkpoint _ as e -> raise e
      | End_of_file -> raise (Bad_checkpoint "truncated checkpoint")
      | Failure msg -> raise (Bad_checkpoint ("unreadable checkpoint: " ^ msg)))
