(** Partition provisioning: the ER = resource x (1 + c) rule of §3.5.

    Each iterated instance's measured demand is inflated by the
    over-provision coefficient [c] and packed into a contiguous column
    span of the debug SLR; the remainder of the device becomes the static
    region.  A larger [c] survives more RTL growth before the
    {!Flow.Partition_overflow} full-recompile fallback, at the price of
    fabric the static region cannot use — the §5.2 trade-off. *)

open Zoomie_fabric

(** The paper's default over-provision coefficient (30 %). *)
val default_coefficient : float

exception Does_not_fit of string

(** Find a column span at [(slr, row)] starting at or after [col_lo]
    whose resources cover the demand.  @raise Does_not_fit otherwise. *)
val find_span :
  Geometry.region_layout -> row:int -> slr:int -> col_lo:int -> Resource.t -> Region.t

(** Place one over-provisioned region per (path, demand), all inside
    [debug_slr], and return them with the complementary static regions
    covering the rest of the device.
    @raise Does_not_fit if the debug SLR runs out of columns. *)
val provision :
  Device.t ->
  c:float ->
  debug_slr:int ->
  (string * Resource.t) list ->
  (string * Region.t) list * Region.t list
