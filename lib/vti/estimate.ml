(** VTI resource estimation and region provisioning (§3.5).

    For each iterated partition the estimated requirement per resource
    class is [ER = resource * (1 + c)] where [c] is the over-provision
    coefficient trading area for timing (default 0.30, the §5.2 value).  A
    partition's region must satisfy [A_total >= max_resource ER] for every
    class.

    All iterated partitions are provisioned inside one SLR (the debug
    chiplet) to avoid cross-die paths in the debugged logic — §3.5's
    placement rule for chiplet FPGAs. *)

open Zoomie_fabric

let default_coefficient = 0.30

exception Does_not_fit of string

(** Smallest column span starting at [col_lo] in one region row whose
    resources cover [need]. *)
let find_span layout ~row ~slr ~col_lo need =
  let ncols = Array.length layout.Geometry.columns in
  let rec widen hi =
    if hi >= ncols then raise (Does_not_fit "partition does not fit in a row")
    else begin
      let r = Region.make ~slr ~row_lo:row ~row_hi:row ~col_lo ~col_hi:hi in
      if Resource.fits ~demand:need ~capacity:(Region.resources layout r) then r
      else widen (hi + 1)
    end
  in
  widen col_lo

(** Provision one region per iterated partition inside [debug_slr], packing
    them left-to-right along region rows from the top.  Returns the
    partition regions (in input order) and the remaining static regions of
    the device. *)
let provision device ~c ~debug_slr (demands : (string * Resource.t) list) =
  let slr = Device.slr device debug_slr in
  let layout = slr.Device.layout in
  let ncols = Array.length layout.Geometry.columns in
  let row = ref 0 and col = ref 0 in
  let regions =
    List.map
      (fun (name, demand) ->
        let need = Resource.over_provision ~c demand in
        let rec attempt () =
          if !row >= slr.Device.region_rows then
            raise (Does_not_fit (Printf.sprintf "no room for partition %s" name));
          match find_span layout ~row:!row ~slr:debug_slr ~col_lo:!col need with
          | r ->
            col := r.Region.col_hi + 1;
            r
          | exception Does_not_fit _ when !col > 0 ->
            (* Start a fresh row. *)
            incr row;
            col := 0;
            attempt ()
        in
        (name, attempt ()))
      demands
  in
  (* Static regions: the rest of the debug SLR plus all other SLRs. *)
  let statics = ref [] in
  (* Remainder of the current partition row. *)
  if !col < ncols && !row < slr.Device.region_rows then
    statics :=
      Region.make ~slr:debug_slr ~row_lo:!row ~row_hi:!row ~col_lo:!col
        ~col_hi:(ncols - 1)
      :: !statics;
  (* Rows below the partition rows. *)
  if !row + 1 < slr.Device.region_rows then
    statics :=
      Region.make ~slr:debug_slr ~row_lo:(!row + 1)
        ~row_hi:(slr.Device.region_rows - 1) ~col_lo:0 ~col_hi:(ncols - 1)
      :: !statics;
  (* Other SLRs entirely. *)
  Array.iter
    (fun (s : Device.slr) ->
      if s.Device.slr_index <> debug_slr then
        statics :=
          Region.make ~slr:s.Device.slr_index ~row_lo:0
            ~row_hi:(s.Device.region_rows - 1) ~col_lo:0
            ~col_hi:(Array.length s.Device.layout.Geometry.columns - 1)
          :: !statics)
    device.Device.slrs;
  (regions, List.rev !statics)
