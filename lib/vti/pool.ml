(** A small OCaml 5 [Domain]-based worker pool: the real Figure 4 fan-out.

    Order-preserving parallel map with a shared atomic work counter, capped
    at {!default_jobs} domains.  Tasks must be pure (or touch only
    task-local state): the VTI flow uses this for unique-module synthesis,
    per-region placement of iterated partitions, per-stamp route
    contributions and frame-generation shards, all of which read shared
    immutable structures and write task-local ones.  With [jobs = 1] (or a
    single task) everything runs on the calling domain, which keeps the
    sequential path allocation-identical for differential testing. *)

let default_jobs () =
  let n = Domain.recommended_domain_count () in
  if n < 1 then 1 else min n 16

(* Run [f] over every index in [0, n) from [j] domains (including the
   calling one), least index first per domain via a shared counter. *)
let parallel_for ~j ~n f =
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        f i;
        loop ()
      end
    in
    loop ()
  in
  let domains = Array.init (j - 1) (fun _ -> Domain.spawn worker) in
  let main_exn = (try worker (); None with e -> Some e) in
  let joined =
    Array.map (fun d -> try Domain.join d; None with e -> Some e) domains
  in
  (match main_exn with Some e -> raise e | None -> ());
  Array.iter (function Some e -> raise e | None -> ()) joined

let map_array ?jobs (f : 'a -> 'b) (a : 'a array) : 'b array =
  let n = Array.length a in
  let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let j = min j n in
  if j <= 1 then Array.map f a
  else begin
    let out : 'b option array = Array.make n None in
    parallel_for ~j ~n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))
