(** A small OCaml 5 [Domain]-based worker pool: the real Figure 4 fan-out.

    Order-preserving parallel map with a shared atomic work counter, capped
    at {!default_jobs} domains.  Tasks must be pure (or touch only
    task-local state): the VTI flow uses this for unique-module synthesis,
    per-region placement of iterated partitions, per-stamp route
    contributions and frame-generation shards, all of which read shared
    immutable structures and write task-local ones.  With [jobs = 1] (or a
    single task) everything runs on the calling domain, which keeps the
    sequential path allocation-identical for differential testing. *)

let default_jobs () =
  let n = Domain.recommended_domain_count () in
  if n < 1 then 1 else min n 16

(* Run [f] over every index in [0, n) from [j] domains (including the
   calling one), least index first per domain via a shared counter.

   A raising task must not kill its domain (losing the exception and its
   backtrace to a bare [Domain.join] re-raise): each worker catches, the
   first failure is recorded with its backtrace, the remaining indices
   are abandoned, and the submitting domain re-raises after every domain
   has been joined — so the pool always winds down cleanly and the
   caller sees the task's own exception, backtrace intact. *)
let parallel_for ~j ~n f =
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    let rec loop () =
      if Atomic.get failure = None then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try f i
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             (* First failure wins; concurrent losers are dropped. *)
             ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          loop ()
        end
      end
    in
    loop ()
  in
  let domains = Array.init (j - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map_array ?jobs (f : 'a -> 'b) (a : 'a array) : 'b array =
  let n = Array.length a in
  let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let j = min j n in
  if j <= 1 then Array.map f a
  else begin
    let out : 'b option array = Array.make n None in
    parallel_for ~j ~n (fun i -> out.(i) <- Some (f a.(i)));
    Array.mapi
      (fun i slot ->
        match slot with
        | Some v -> v
        | None ->
          (* parallel_for re-raises task failures before we get here, so
             an unfilled slot means the work counter itself misbehaved. *)
          failwith
            (Printf.sprintf
               "Pool.map_array: slot %d/%d never produced (work counter \
                invariant violated)"
               i n))
      out
  end

let map ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))
