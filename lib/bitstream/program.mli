(** Bitstream assembler: builds the command-word streams the board
    executes.

    Thin, imperative, append-only — every host-side operation (configure,
    readback, capture/restore, SLR selection) is phrased as a [Program]
    so it travels the same path a real cable would. *)

type t

val create : unit -> t

(** Append one raw word. *)
val emit : t -> int -> unit

(** The assembled stream. *)
val words : t -> int array

(** {1 The command vocabulary} *)

val sync : t -> unit

val nop : ?n:int -> t -> unit

val write_reg : t -> Packet.reg -> int list -> unit

val cmd : t -> Packet.command -> unit

val set_far : t -> row:int -> col:int -> minor:int -> unit

(** One empty BOUT write: forward the rest of the stream one SLR along
    the ring (§4.4). *)
val bout_hop : t -> unit

(** [hops] BOUT writes — address the SLR [hops] positions from primary. *)
val select_slr : t -> hops:int -> unit

(** WCFG + FDRI burst of whole frames (auto-incrementing FAR). *)
val write_frames : t -> int array list -> unit

(** RCFG + FDRO read of [words] words. *)
val read_frames : t -> words:int -> unit

val write_idcode : t -> int -> unit

(** MASK-gated CTL0 update (only masked bits take effect — the mechanism
    behind the §4.7 GSR quirk). *)
val set_ctl0 : t -> mask:int -> value:int -> unit

val gcapture : t -> unit

val grestore : t -> unit

val start : t -> unit

val desync : t -> unit
