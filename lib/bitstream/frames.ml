(** Sparse configuration-frame store for one SLR.

    Frames are allocated on first touch; unconfigured frames read back as
    zeros (like a blank device).  Keys are (region row, column, minor). *)

type key = int * int * int

type t = {
  table : (key, int array) Hashtbl.t;
  words_per_frame : int;
}

let create () =
  { table = Hashtbl.create 1024; words_per_frame = Zoomie_fabric.Geometry.words_per_frame }

let frame t key =
  match Hashtbl.find_opt t.table key with
  | Some f -> f
  | None ->
    let f = Array.make t.words_per_frame 0 in
    Hashtbl.add t.table key f;
    f

let read_word t key i = (frame t key).(i)

let write_word t key i v = (frame t key).(i) <- v land 0xFFFFFFFF

let get_bit t key ~word ~bit = (read_word t key word lsr bit) land 1 = 1

let set_bit t key ~word ~bit v =
  let f = frame t key in
  if v then f.(word) <- f.(word) lor (1 lsl bit)
  else f.(word) <- f.(word) land lnot (1 lsl bit)

(** Entire frame as a word array (copied). *)
let read_frame t key = Array.copy (frame t key)

let write_frame t key data =
  if Array.length data <> t.words_per_frame then
    invalid_arg "Frames.write_frame: bad length";
  Array.blit data 0 (frame t key) 0 t.words_per_frame

let allocated t = Hashtbl.length t.table

let clear t = Hashtbl.reset t.table
