(** Per-SLR configuration microcontroller.

    Each SLR is "a complete FPGA on a chiplet" (§4.4): it owns its frame
    memory and interprets the same command set.  State capture/restore and
    clock/reset actions are delegated to board-level hooks because they
    touch the executing design. *)

open Zoomie_fabric

type mode = Mode_idle | Mode_wcfg | Mode_rcfg

type hooks = {
  on_gcapture : unit -> unit;
      (** a GCAPTURE was issued (capture itself is lazy — see
          [on_frame_read]) *)
  on_grestore : unit -> unit;
      (** load FF/BRAM state of this SLR from its dirty frames *)
  on_start : unit -> unit;  (** start clocks / pulse GSR *)
  on_frame_read : int * int * int -> unit;
      (** refresh the live state bits of one frame before FDRO serves
          it — the lazy half of GCAPTURE.  Called only for armed,
          non-dirty frames. *)
}

let null_hooks =
  {
    on_gcapture = (fun () -> ());
    on_grestore = (fun () -> ());
    on_start = (fun () -> ());
    on_frame_read = (fun _ -> ());
  }

type t = {
  slr_index : int;
  is_primary : bool;
  expected_idcode : int;
  layout : Geometry.region_layout;
  region_rows : int;
  frames : Frames.t;
  mutable far : int * int * int;  (* row, col, minor *)
  mutable mode : mode;
  mutable mask : int;
  mutable ctl0 : int;
  mutable hooks : hooks;
  mutable idcode_writes : int list;  (* §4.5 observability *)
  mutable idcode_error : bool;
  mutable synced : bool;
  dirty : (int * int * int, unit) Hashtbl.t;
      (* frames written via FDRI since the last GCAPTURE: exactly the set
         a GRESTORE must drive back into the fabric, and the set whose
         written content must win over a lazy capture refresh *)
  mutable captured : bool;  (* a GCAPTURE has armed lazy state readout *)
}

let create ~device ~slr_index =
  let slr = Device.slr device slr_index in
  {
    slr_index;
    is_primary = slr_index = device.Device.primary;
    expected_idcode = Int32.to_int device.Device.idcode;
    layout = slr.Device.layout;
    region_rows = slr.Device.region_rows;
    frames = Frames.create ();
    far = (0, 0, 0);
    mode = Mode_idle;
    mask = 0;
    ctl0 = 0;
    hooks = null_hooks;
    idcode_writes = [];
    idcode_error = false;
    synced = false;
    dirty = Hashtbl.create 64;
    captured = false;
  }

let set_hooks t hooks = t.hooks <- hooks

(* --- dirty-frame bookkeeping for lazy capture/restore ----------------- *)

(* GCAPTURE supersedes earlier FDRI writes: from here on the fabric is
   the source of truth for every state bit, so the dirty set resets. *)
let arm_capture t =
  Hashtbl.reset t.dirty;
  t.captured <- true

let capture_armed t = t.captured

let mark_dirty t key = Hashtbl.replace t.dirty key ()

let frame_dirty t key = Hashtbl.mem t.dirty key

let mark_clean t key = Hashtbl.remove t.dirty key

let dirty_keys t = Hashtbl.fold (fun k () l -> k :: l) t.dirty []

(** Is GSR / capture currently restricted to the dynamic region?  CTL0 bit 0,
    left set by partial reconfiguration unless explicitly cleared (§4.7). *)
let gsr_restricted t = t.ctl0 land 1 = 1

let num_columns t = Array.length t.layout.Geometry.columns

let advance_far t =
  let row, col, minor = t.far in
  let fpc = Geometry.frames_per_column t.layout.Geometry.columns.(col) in
  if minor + 1 < fpc then t.far <- (row, col, minor + 1)
  else if col + 1 < num_columns t then t.far <- (row, col + 1, 0)
  else t.far <- (row + 1, 0, 0)

let far_valid t =
  let row, col, _ = t.far in
  row < t.region_rows && col < num_columns t

(* Streaming FDRI: words accumulate into the frame at FAR; FAR advances per
   completed frame. *)
let write_fdri_words t data =
  let wpf = Geometry.words_per_frame in
  let i = ref 0 in
  let n = Array.length data in
  while !i < n do
    if far_valid t then begin
      let row, col, minor = t.far in
      let take = min wpf (n - !i) in
      for k = 0 to take - 1 do
        Frames.write_word t.frames (row, col, minor) k data.(!i + k)
      done;
      mark_dirty t (row, col, minor);
      i := !i + take;
      advance_far t
    end
    else i := n
  done

let read_fdro_words t ~count =
  let wpf = Geometry.words_per_frame in
  let out = Array.make count 0 in
  let i = ref 0 in
  while !i < count do
    if far_valid t then begin
      let row, col, minor = t.far in
      (* Lazy GCAPTURE: materialize this frame's state bits only now that
         someone reads them.  Dirty frames keep their written content. *)
      if t.captured && not (frame_dirty t (row, col, minor)) then
        t.hooks.on_frame_read (row, col, minor);
      let take = min wpf (count - !i) in
      for k = 0 to take - 1 do
        out.(!i + k) <- Frames.read_word t.frames (row, col, minor) k
      done;
      i := !i + take;
      advance_far t
    end
    else i := count
  done;
  out

(** Handle a register write directed at this SLR. *)
let write_reg t (reg : Packet.reg) (values : int array) =
  match reg with
  | Packet.Far ->
    if Array.length values > 0 then t.far <- Packet.far_decode values.(0)
  | Packet.Fdri -> write_fdri_words t values
  | Packet.Cmd ->
    Array.iter
      (fun v ->
        match Packet.command_of_code v with
        | Some Packet.Cmd_wcfg -> t.mode <- Mode_wcfg
        | Some Packet.Cmd_rcfg -> t.mode <- Mode_rcfg
        | Some Packet.Cmd_gcapture ->
          arm_capture t;
          t.hooks.on_gcapture ()
        | Some Packet.Cmd_grestore -> t.hooks.on_grestore ()
        | Some Packet.Cmd_start -> t.hooks.on_start ()
        | Some Packet.Cmd_desync -> t.synced <- false
        | Some (Packet.Cmd_null | Packet.Cmd_rcrc | Packet.Cmd_shutdown) | None -> ())
      values
  | Packet.Mask -> if Array.length values > 0 then t.mask <- values.(0)
  | Packet.Ctl0 ->
    if Array.length values > 0 then begin
      (* Only bits enabled in MASK are updated — the mechanism §4.7 exploits. *)
      let v = values.(0) in
      t.ctl0 <- t.ctl0 land lnot t.mask lor (v land t.mask)
    end
  | Packet.Idcode ->
    Array.iter
      (fun v ->
        t.idcode_writes <- v :: t.idcode_writes;
        (* Only the primary SLR verifies the IDCODE (§4.5): writing a wrong
           ID to a secondary has no effect. *)
        if t.is_primary && v <> t.expected_idcode then t.idcode_error <- true)
      values
  | Packet.Bout ->
    (* Handled by the chain dispatcher at board level; reaching here means a
       BOUT write with payload, which real hardware ignores. *)
    ()
  | Packet.Crc | Packet.Stat | Packet.Fdro -> ()

(** Handle a register read directed at this SLR; only FDRO returns data. *)
let read_reg t (reg : Packet.reg) ~count =
  match reg with
  | Packet.Fdro -> read_fdro_words t ~count
  | Packet.Stat ->
    Array.make count ((if t.idcode_error then 1 else 0) lor (t.ctl0 lsl 1))
  | _ -> Array.make count 0
