(** The simulated FPGA board: a chiplet device, one configuration
    microcontroller per SLR connected in a ring, and the currently loaded
    design executing in a netlist simulator.

    The chain dispatcher implements the §4.4 discovery: a run of [k]
    consecutive empty BOUT writes directs subsequent JTAG operations to the
    SLR [k] hops from the primary, until another BOUT run appears.  All JTAG
    traffic is accounted against the {!Jtag} timing model, giving the
    readback measurements of Table 3. *)

open Zoomie_fabric
module Netsim = Zoomie_synth.Netsim
module Netsim_batch = Zoomie_synth.Netsim_batch
module Netlist = Zoomie_synth.Netlist

type payload = {
  netlist : Netlist.t;
  locmap : Loc.map;
  clock_root : string;
  freq_mhz : float;
}

type bitstream = {
  bs_words : int array;
  bs_payload : payload option;
  bs_partial : bool;
  bs_dynamic : Region.t list;  (** regions being reconfigured *)
}

(* State bits resident in one configuration frame — the inverse of the
   locmap walks below, precomputed per design so capture/restore touch
   only the frames a readback actually transfers instead of sweeping
   every state bit on the SLR. *)
type frame_bits = {
  fb_ffs : (int * int * int) array;  (* ff index, frame word, frame bit *)
  fb_mems : (int * int * int * int * int) array;
      (* mem index, addr, mem bit, frame word, frame bit *)
}

type t = {
  device : Device.t;
  ucs : Uc.t array;
  mutable design : (payload * Netsim.t) option;
  mutable batch : Netsim_batch.t option;  (* lazy 63-lane shadow model *)
  mutable dynamic_regions : Region.t list;
  meter : Jtag.Meter.t;
  mutable fpga_cycles : int;
  mutable lease : string option;
  mutable state_index :
    (payload * (int * int * int, frame_bits) Hashtbl.t array) option;
      (* per-SLR frame-key -> state-bits map for the keyed payload *)
  mutable cable_scale : float;
      (* wall seconds slept per modeled cable second during execute;
         0 = pure model (default) *)
  mutable cable_debt : float;
      (* accumulated unslept cable wall time; paid off in >=5ms chunks
         so sub-millisecond transfers don't each eat a scheduler tick *)
}

let device t = t.device
let jtag_seconds t = Jtag.Meter.seconds t.meter
let meter t = t.meter
let fpga_cycles t = t.fpga_cycles

(* Wall-clock cable emulation: when set, every execute sleeps
   [cable_scale] wall seconds per modeled cable second it charged.  The
   transport is the resource a debug farm shards — one cable per board,
   transfers overlapping across boards but serial on each — so a farm
   harness enables this to make cable occupancy real to the scheduler.
   Off (0.0) everywhere else: the model stays purely virtual-time. *)
let set_cable_scale t s = t.cable_scale <- max 0.0 s
let cable_scale t = t.cable_scale

(* --- ownership lease (advisory, for multi-session front-ends) --- *)

let lease_owner t = t.lease

let acquire_lease t ~owner =
  match t.lease with
  | None ->
    t.lease <- Some owner;
    Ok ()
  | Some o when o = owner -> Ok ()
  | Some o -> Error (Printf.sprintf "board leased by %S" o)

let release_lease t ~owner =
  match t.lease with
  | Some o when o = owner -> t.lease <- None
  | _ -> ()

(* --- cable transfer accounting (batched-sweep bookkeeping) --- *)

let transfer_count t = Jtag.Meter.transfers t.meter
let words_transferred t = (Jtag.Meter.counts t.meter).Jtag.Meter.m_words

let netsim t =
  match t.design with
  | Some (_, sim) -> sim
  | None -> invalid_arg "Board: no design loaded"

let payload t =
  match t.design with
  | Some (p, _) -> p
  | None -> invalid_arg "Board: no design loaded"

(* The 63-lane shadow model of the loaded design, compiled lazily on
   first use and dropped whenever (re)configuration replaces the design.
   It runs off-cable: a fuzz farm stepping 63 stimulus scenarios per
   settle against the same netlist the board executes, without charging
   the JTAG meter or the board's cycle clock. *)
let batch_sim t =
  match t.batch with
  | Some b -> b
  | None ->
    let p =
      match t.design with
      | Some (p, _) -> p
      | None -> invalid_arg "Board: no design loaded"
    in
    let b = Netsim_batch.create p.netlist in
    t.batch <- Some b;
    b

let run_batch t cycles =
  let p =
    match t.design with
    | Some (p, _) -> p
    | None -> invalid_arg "Board: no design loaded"
  in
  Netsim_batch.step ~n:cycles (batch_sim t) p.clock_root

let uc t i = t.ucs.(i)

(* Iterate FF cells resident on SLR [slr]; honors the CTL0 GSR/capture
   restriction when set. *)
let iter_slr_ffs t ~slr f =
  match t.design with
  | None -> ()
  | Some (p, sim) ->
    let restricted = Uc.gsr_restricted t.ucs.(slr) in
    Array.iteri
      (fun i (site : Loc.ff_site) ->
        if site.f_slr = slr then
          let visible =
            (not restricted)
            || Region.contains_any t.dynamic_regions ~slr ~row:site.f_row
                 ~col:site.f_col
          in
          if visible then f i site sim)
      p.locmap.Loc.ff_sites

let iter_slr_mem_bits t ~slr f =
  match t.design with
  | None -> ()
  | Some (p, sim) ->
    let restricted = Uc.gsr_restricted t.ucs.(slr) in
    Array.iteri
      (fun mi placement ->
        let m = p.netlist.Netlist.mems.(mi) in
        match placement with
        | Loc.In_bram sites ->
          let width_blocks = (m.Netlist.mem_width + 35) / 36 in
          for addr = 0 to m.Netlist.mem_depth - 1 do
            for bit = 0 to m.Netlist.mem_width - 1 do
              let brow, bcol, within =
                Loc.bram_bit_position ~depth:m.Netlist.mem_depth ~addr ~bit
              in
              let ordinal = (brow * width_blocks) + bcol in
              if ordinal < Array.length sites then begin
                let site = sites.(ordinal) in
                if site.Loc.b_slr = slr then
                  let visible =
                    (not restricted)
                    || Region.contains_any t.dynamic_regions ~slr
                         ~row:site.Loc.b_row ~col:site.Loc.b_col
                  in
                  if visible then
                    let minor, word, fbit =
                      Geometry.bram_location ~tile:site.Loc.b_tile ~bit:within
                    in
                    f ~mi ~addr ~bit
                      ~key:(site.Loc.b_row, site.Loc.b_col, minor)
                      ~word ~fbit sim
              end
            done
          done
        | Loc.In_lutram sites ->
          let depth_units = (m.Netlist.mem_depth + 63) / 64 in
          for addr = 0 to m.Netlist.mem_depth - 1 do
            for bit = 0 to m.Netlist.mem_width - 1 do
              let depth_unit, bitcol, within = Loc.lutram_bit_position ~addr ~bit in
              let ordinal = (bitcol * depth_units) + depth_unit in
              if ordinal < Array.length sites then begin
                let site = sites.(ordinal) in
                if site.Loc.l_slr = slr then
                  let visible =
                    (not restricted)
                    || Region.contains_any t.dynamic_regions ~slr
                         ~row:site.Loc.l_row ~col:site.Loc.l_col
                  in
                  if visible then
                    let minor, word, fbit =
                      Geometry.lut_location ~tile:site.Loc.l_tile
                        ~site:site.Loc.l_index ~bit:within
                    in
                    f ~mi ~addr ~bit
                      ~key:(site.Loc.l_row, site.Loc.l_col, minor)
                      ~word ~fbit sim
              end
            done
          done)
      p.locmap.Loc.mem_placements

(* --- frame-key -> state-bits reverse index ----------------------------- *)

(* One walk over the whole design (all SLRs at once), mirroring the bit
   layout of [iter_slr_ffs]/[iter_slr_mem_bits] exactly.  Visibility
   (GSR restriction + dynamic regions) is NOT baked in: it depends on
   runtime CTL0 state, and every site in a frame shares the frame key's
   (row, col), so the filter collapses to one check per frame at use
   time. *)
let build_state_index t (p : payload) =
  let n = Array.length t.ucs in
  let tmp = Array.init n (fun _ -> Hashtbl.create 1024) in
  let cell slr key =
    let tbl = tmp.(slr) in
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
      let c = (ref [], ref []) in
      Hashtbl.add tbl key c;
      c
  in
  Array.iteri
    (fun i (site : Loc.ff_site) ->
      let minor, word, bit = Loc.ff_frame_bit site in
      let ffs, _ = cell site.Loc.f_slr (site.Loc.f_row, site.Loc.f_col, minor) in
      ffs := (i, word, bit) :: !ffs)
    p.locmap.Loc.ff_sites;
  Array.iteri
    (fun mi placement ->
      let m = p.netlist.Netlist.mems.(mi) in
      match placement with
      | Loc.In_bram sites ->
        let width_blocks = (m.Netlist.mem_width + 35) / 36 in
        for addr = 0 to m.Netlist.mem_depth - 1 do
          for bit = 0 to m.Netlist.mem_width - 1 do
            let brow, bcol, within =
              Loc.bram_bit_position ~depth:m.Netlist.mem_depth ~addr ~bit
            in
            let ordinal = (brow * width_blocks) + bcol in
            if ordinal < Array.length sites then begin
              let site = sites.(ordinal) in
              let minor, word, fbit =
                Geometry.bram_location ~tile:site.Loc.b_tile ~bit:within
              in
              let _, mems =
                cell site.Loc.b_slr (site.Loc.b_row, site.Loc.b_col, minor)
              in
              mems := (mi, addr, bit, word, fbit) :: !mems
            end
          done
        done
      | Loc.In_lutram sites ->
        let depth_units = (m.Netlist.mem_depth + 63) / 64 in
        for addr = 0 to m.Netlist.mem_depth - 1 do
          for bit = 0 to m.Netlist.mem_width - 1 do
            let depth_unit, bitcol, within = Loc.lutram_bit_position ~addr ~bit in
            let ordinal = (bitcol * depth_units) + depth_unit in
            if ordinal < Array.length sites then begin
              let site = sites.(ordinal) in
              let minor, word, fbit =
                Geometry.lut_location ~tile:site.Loc.l_tile
                  ~site:site.Loc.l_index ~bit:within
              in
              let _, mems =
                cell site.Loc.l_slr (site.Loc.l_row, site.Loc.l_col, minor)
              in
              mems := (mi, addr, bit, word, fbit) :: !mems
            end
          done
        done)
    p.locmap.Loc.mem_placements;
  Array.map
    (fun tbl ->
      let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
      Hashtbl.iter
        (fun key (ffs, mems) ->
          Hashtbl.add out key
            {
              fb_ffs = Array.of_list (List.rev !ffs);
              fb_mems = Array.of_list (List.rev !mems);
            })
        tbl;
      out)
    tmp

(* Keyed on the payload's physical identity: (re)configuration installs a
   fresh payload, which invalidates the cache by construction. *)
let state_index t (p : payload) =
  match t.state_index with
  | Some (p', idx) when p' == p -> idx
  | _ ->
    let idx = build_state_index t p in
    t.state_index <- Some (p, idx);
    idx

(* Every site in a frame shares the key's (row, col), so the GSR
   restriction check of [iter_slr_ffs]/[iter_slr_mem_bits] is one test
   per frame here. *)
let frame_visible t ~slr key =
  (not (Uc.gsr_restricted t.ucs.(slr)))
  ||
  let row, col, _ = key in
  Region.contains_any t.dynamic_regions ~slr ~row ~col

(* The lazy half of GCAPTURE: refresh the state bits of one frame from
   the live design, at FDRO read time. *)
let fill_frame t slr key =
  match t.design with
  | None -> ()
  | Some (p, sim) -> (
    match Hashtbl.find_opt (state_index t p).(slr) key with
    | None -> ()
    | Some fb ->
      if frame_visible t ~slr key then begin
        let frames = t.ucs.(slr).Uc.frames in
        Array.iter
          (fun (i, word, bit) ->
            Frames.set_bit frames key ~word ~bit (Netsim.ff_value sim i))
          fb.fb_ffs;
        Array.iter
          (fun (mi, addr, bit, word, fbit) ->
            Frames.set_bit frames key ~word ~bit:fbit
              (Netsim.mem_bit sim mi ~addr ~bit))
          fb.fb_mems
      end)

(* GCAPTURE, eagerly: arm the µc and materialize every state frame of
   SLR [slr].  The packet-stream path never calls this — FDRO reads
   materialize lazily via [fill_frame] — but the exported entry point
   keeps the "snapshot now" contract for direct frame inspection. *)
let capture_slr t slr =
  Uc.arm_capture t.ucs.(slr);
  match t.design with
  | None -> ()
  | Some (p, _) ->
    Hashtbl.iter (fun key _ -> fill_frame t slr key) (state_index t p).(slr)

(* GRESTORE: drive the frames written since the last GCAPTURE back into
   live state.  Clean frames either mirror the fabric already (captured)
   or predate the capture that superseded them — either way the full-SLR
   sweep they used to get was a no-op. *)
let restore_slr t slr =
  match t.design with
  | None -> ()
  | Some (p, sim) ->
    let u = t.ucs.(slr) in
    let idx = (state_index t p).(slr) in
    let applied = ref false in
    List.iter
      (fun key ->
        match Hashtbl.find_opt idx key with
        | None -> ()
        | Some fb ->
          if frame_visible t ~slr key then begin
            applied := true;
            Uc.mark_clean u key;
            let frames = u.Uc.frames in
            Array.iter
              (fun (i, word, bit) ->
                Netsim.set_ff sim i (Frames.get_bit frames key ~word ~bit))
              fb.fb_ffs;
            Array.iter
              (fun (mi, addr, bit, word, fbit) ->
                Netsim.set_mem_bit sim mi ~addr ~bit
                  (Frames.get_bit frames key ~word ~bit:fbit))
              fb.fb_mems
          end)
      (Uc.dirty_keys u);
    if !applied then Netsim.eval_comb sim

(* START: pulse GSR — FFs (within the restriction) take their init value. *)
let start_slr t slr =
  iter_slr_ffs t ~slr (fun i _site sim ->
      Netsim.set_ff sim i (payload t).netlist.Netlist.ffs.(i).Netlist.init)

let create device =
  let t =
    {
      device;
      ucs = Array.init (Device.num_slrs device) (fun i -> Uc.create ~device ~slr_index:i);
      design = None;
      batch = None;
      dynamic_regions = [];
      meter = Jtag.Meter.create ();
      fpga_cycles = 0;
      lease = None;
      state_index = None;
      cable_scale = 0.0;
      cable_debt = 0.0;
    }
  in
  Array.iteri
    (fun i u ->
      Uc.set_hooks u
        {
          (* GCAPTURE itself is bookkeeping only (the µc arms lazy
             readout); frames materialize per-key as FDRO serves them. *)
          Uc.on_gcapture = (fun () -> ());
          on_grestore = (fun () -> restore_slr t i);
          on_start = (fun () -> start_slr t i);
          on_frame_read = (fun key -> fill_frame t i key);
        })
    t.ucs;
  t

(** Execute a JTAG word stream through the chain dispatcher.  Returns read
    data (FDRO responses etc.) and charges transfer time. *)
let execute t (stream : int array) =
  let n_slrs = Device.num_slrs t.device in
  let primary = t.device.Device.primary in
  let target = ref primary in
  let bout_run = ref 0 in
  let out = ref [] in
  let out_words = ref 0 in
  let i = ref 0 in
  let n = Array.length stream in
  let take count =
    let data = Array.sub stream (!i) (min count (n - !i)) in
    i := !i + Array.length data;
    data
  in
  let syncs = ref 0 in
  let hops = ref 0 in
  let gcaptures = ref 0 in
  let grestores = ref 0 in
  let pending_op = ref None in
  while !i < n do
    let w = stream.(!i) in
    incr i;
    match Packet.decode w with
    | Packet.Sync ->
      incr syncs;
      target := primary;
      bout_run := 0
    | Packet.Dummy -> ()
    | Packet.Type1 { op = Packet.Op_write; reg; count } -> (
      match Packet.reg_of_addr reg with
      | Some Packet.Bout when count = 0 ->
        (* Consecutive-run semantics: k empty BOUT writes select primary+k. *)
        incr bout_run;
        target := (primary + !bout_run) mod n_slrs;
        incr hops
      | Some r ->
        bout_run := 0;
        let data = take count in
        (match r with
        | Packet.Cmd ->
          Array.iter
            (fun v ->
              match Packet.command_of_code v with
              | Some Packet.Cmd_gcapture -> incr gcaptures
              | Some Packet.Cmd_grestore -> incr grestores
              | _ -> ())
            data
        | _ -> ());
        if count = 0 && r = Packet.Fdri then pending_op := Some (`Write, r)
        else Uc.write_reg t.ucs.(!target) r data
      | None ->
        bout_run := 0;
        ignore (take count))
    | Packet.Type1 { op = Packet.Op_read; reg; count } -> (
      bout_run := 0;
      match Packet.reg_of_addr reg with
      | Some r ->
        if count = 0 then pending_op := Some (`Read, r)
        else begin
          let data = Uc.read_reg t.ucs.(!target) r ~count in
          out := data :: !out;
          out_words := !out_words + Array.length data
        end
      | None -> ())
    | Packet.Type2 { op; count } -> (
      bout_run := 0;
      match (!pending_op, op) with
      | Some (`Write, r), Packet.Op_write ->
        pending_op := None;
        let data = take count in
        Uc.write_reg t.ucs.(!target) r data
      | Some (`Read, r), Packet.Op_read ->
        pending_op := None;
        let data = Uc.read_reg t.ucs.(!target) r ~count in
        out := data :: !out;
        out_words := !out_words + Array.length data
      | _ -> ignore (take (match op with Packet.Op_write -> count | _ -> 0)))
    | Packet.Type1 { op = Packet.Op_nop; _ } | Packet.Raw _ -> bout_run := 0
  done;
  let before = Jtag.Meter.seconds t.meter in
  Jtag.Meter.charge t.meter
    {
      Jtag.Meter.m_words = n + !out_words;
      m_syncs = !syncs;
      m_hops = !hops;
      m_gcaptures = !gcaptures;
      m_grestores = !grestores;
    };
  if t.cable_scale > 0.0 then begin
    (* occupy the cable in wall time (scaled); the executing domain
       blocks exactly as a thread driving a real JTAG adapter would,
       letting other boards' cables run concurrently.  Debt below 5ms
       carries over — sleeping it immediately would round every tiny
       transfer up to a whole scheduler tick and inflate the total far
       beyond [cable_scale]'s compression factor. *)
    t.cable_debt <-
      t.cable_debt +. (t.cable_scale *. (Jtag.Meter.seconds t.meter -. before));
    if t.cable_debt >= 0.005 then begin
      let d = t.cable_debt in
      t.cable_debt <- 0.0;
      Unix.sleepf d
    end
  end;
  Array.concat (List.rev !out)

(** Pure pricing scan: the {!Jtag.Meter.counts} an {!execute} of [stream]
    would charge, without touching board or uc state.  The response word
    total is derivable from the stream alone because the ucs answer every
    read with exactly the requested count.  [price_stream] is the modeled
    standalone cost of the transfer — what a scheduler uses to price
    hypothetical traffic through the same {!Jtag.Meter.price} the
    executor charges with. *)
let stream_counts (stream : int array) =
  let i = ref 0 in
  let n = Array.length stream in
  let out_words = ref 0 in
  let syncs = ref 0 in
  let hops = ref 0 in
  let gcaptures = ref 0 in
  let grestores = ref 0 in
  let pending_op = ref None in
  let skip count = i := min n (!i + count) in
  while !i < n do
    let w = stream.(!i) in
    incr i;
    match Packet.decode w with
    | Packet.Sync -> incr syncs
    | Packet.Dummy -> ()
    | Packet.Type1 { op = Packet.Op_write; reg; count } -> (
      match Packet.reg_of_addr reg with
      | Some Packet.Bout when count = 0 -> incr hops
      | Some r ->
        (match r with
        | Packet.Cmd ->
          for k = 0 to min count (n - !i) - 1 do
            match Packet.command_of_code stream.(!i + k) with
            | Some Packet.Cmd_gcapture -> incr gcaptures
            | Some Packet.Cmd_grestore -> incr grestores
            | _ -> ()
          done
        | _ -> ());
        skip count;
        if count = 0 && r = Packet.Fdri then pending_op := Some `Write
      | None -> skip count)
    | Packet.Type1 { op = Packet.Op_read; reg; count } -> (
      match Packet.reg_of_addr reg with
      | Some _ ->
        if count = 0 then pending_op := Some `Read
        else out_words := !out_words + count
      | None -> ())
    | Packet.Type2 { op; count } -> (
      match (!pending_op, op) with
      | Some `Write, Packet.Op_write ->
        pending_op := None;
        skip count
      | Some `Read, Packet.Op_read ->
        pending_op := None;
        out_words := !out_words + count
      | _ -> skip (match op with Packet.Op_write -> count | _ -> 0))
    | Packet.Type1 { op = Packet.Op_nop; _ } | Packet.Raw _ -> ()
  done;
  {
    Jtag.Meter.m_words = n + !out_words;
    m_syncs = !syncs;
    m_hops = !hops;
    m_gcaptures = !gcaptures;
    m_grestores = !grestores;
  }

let price_stream stream = Jtag.Meter.price (stream_counts stream)

(* Carry live state across a partial reconfiguration: FFs and memories
   outside the dynamic regions keep their values (matched by RTL name);
   inside, GSR re-initializes. *)
let carry_over_state t (fresh : Netsim.t) (p : payload) ~dynamic =
  match t.design with
  | None -> ()
  | Some (old_p, old_sim) ->
    let old_values = Hashtbl.create 1024 in
    Array.iteri
      (fun i (name, bit) ->
        Hashtbl.replace old_values (name, bit) (Netsim.ff_value old_sim i))
      old_p.netlist.Netlist.ff_names;
    Array.iteri
      (fun i (name, bit) ->
        let site = p.locmap.Loc.ff_sites.(i) in
        let in_dynamic =
          Region.contains_any dynamic ~slr:site.Loc.f_slr ~row:site.Loc.f_row
            ~col:site.Loc.f_col
        in
        if not in_dynamic then
          match Hashtbl.find_opt old_values (name, bit) with
          | Some v -> Netsim.set_ff fresh i v
          | None -> ())
      p.netlist.Netlist.ff_names;
    (* Memories: carry whole arrays by name when static. *)
    let old_mem_index = Hashtbl.create 16 in
    Array.iteri
      (fun mi (m : Netlist.mem) -> Hashtbl.replace old_mem_index m.Netlist.mem_name mi)
      old_p.netlist.Netlist.mems;
    Array.iteri
      (fun mi (m : Netlist.mem) ->
        let in_dynamic =
          match p.locmap.Loc.mem_placements.(mi) with
          | Loc.In_bram sites ->
            Array.exists
              (fun (s : Loc.bram_site) ->
                Region.contains_any dynamic ~slr:s.Loc.b_slr ~row:s.Loc.b_row
                  ~col:s.Loc.b_col)
              sites
          | Loc.In_lutram sites ->
            Array.exists
              (fun (s : Loc.lut_site) ->
                Region.contains_any dynamic ~slr:s.Loc.l_slr ~row:s.Loc.l_row
                  ~col:s.Loc.l_col)
              sites
        in
        if not in_dynamic then
          match Hashtbl.find_opt old_mem_index m.Netlist.mem_name with
          | Some old_mi when
              old_p.netlist.Netlist.mems.(old_mi).Netlist.mem_width = m.Netlist.mem_width
              && old_p.netlist.Netlist.mems.(old_mi).Netlist.mem_depth = m.Netlist.mem_depth ->
            for addr = 0 to m.Netlist.mem_depth - 1 do
              for bit = 0 to m.Netlist.mem_width - 1 do
                Netsim.set_mem_bit fresh mi ~addr ~bit
                  (Netsim.mem_bit old_sim old_mi ~addr ~bit)
              done
            done
          | _ -> ())
      p.netlist.Netlist.mems

(** Program the board.  Full bitstreams replace the design; partial
    bitstreams swap the dynamic regions while static state carries over.
    Note: partial reconfiguration leaves each target SLR's CTL0 GSR-mask
    bit set — the quirk Zoomie must handle before readback (§4.7). *)
let load t (bs : bitstream) =
  let (_ : int array) = execute t bs.bs_words in
  (match bs.bs_payload with
  | Some p ->
    let fresh = Netsim.create p.netlist in
    if bs.bs_partial then begin
      t.dynamic_regions <- bs.bs_dynamic;
      carry_over_state t fresh p ~dynamic:bs.bs_dynamic
    end;
    (* Board pins are driven by the environment: their values persist
       across (re)configuration. *)
    (match t.design with
    | Some (old_p, old_sim) ->
      let old_inputs = Hashtbl.create 16 in
      Array.iter
        (fun (io : Netlist.io) ->
          Hashtbl.replace old_inputs
            (io.Netlist.io_name, io.Netlist.io_bit)
            (Netsim.get old_sim io.Netlist.io_net))
        old_p.netlist.Netlist.inputs;
      Array.iter
        (fun (io : Netlist.io) ->
          match Hashtbl.find_opt old_inputs (io.Netlist.io_name, io.Netlist.io_bit) with
          | Some v -> Netsim.set fresh io.Netlist.io_net v
          | None -> ())
        p.netlist.Netlist.inputs
    | None -> ());
    t.design <- Some (p, fresh);
    t.batch <- None;
    t.state_index <- None;
    Netsim.eval_comb fresh
  | None -> ());
  (* The primary µc rejects the whole configuration on IDCODE mismatch. *)
  if (uc t t.device.Device.primary).Uc.idcode_error then
    invalid_arg "Board.load: IDCODE verification failed on primary SLR"

(** Advance the free-running root clock of the loaded design. *)
let run t cycles =
  let p, sim = (payload t, netsim t) in
  Netsim.step ~n:cycles sim p.clock_root;
  t.fpga_cycles <- t.fpga_cycles + cycles

(** Advance up to [cycles], stopping early once net [stop_net] settles
    high after an edge (the debug controller's stop latch, resolved by
    the host at attach).  Returns the cycles actually run — the clock
    keeps real-time accounting exact even on early stop. *)
let run_until t ~stop_net cycles =
  let p, sim = (payload t, netsim t) in
  let ran = Netsim.run_until sim p.clock_root ~stop_net ~max_cycles:cycles in
  t.fpga_cycles <- t.fpga_cycles + ran;
  ran

(** FPGA wall-clock seconds elapsed so far at the design frequency. *)
let fpga_seconds t =
  match t.design with
  | Some (p, _) -> float_of_int t.fpga_cycles /. (p.freq_mhz *. 1.0e6)
  | None -> 0.0
