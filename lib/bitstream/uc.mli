(** Per-SLR configuration microcontroller: the §4 mechanics, as ground
    truth.

    Each SLR owns one of these; they parse the packet stream, maintain
    FAR auto-increment over the SLR's column geometry, gate CTL0 writes
    through MASK (the §4.7 GSR-restriction quirk falls out of this), and
    verify IDCODE {e only on the primary} — mutating a secondary's
    IDCODE writes is harmless, exactly the §4.5 observation that broke
    Bitfiltrator's assumptions. *)

open Zoomie_fabric

type mode = Mode_idle | Mode_wcfg | Mode_rcfg

(** Callbacks into the board when configuration commands demand fabric
    action (GCAPTURE/GRESTORE/START).  Capture is lazy: GCAPTURE only
    arms the µc; [on_frame_read] then materializes the state bits of
    each frame on demand when FDRO actually serves it, so a readback
    pays only for the frames it transfers. *)
type hooks = {
  on_gcapture : unit -> unit;
  on_grestore : unit -> unit;
  on_start : unit -> unit;
  on_frame_read : int * int * int -> unit;
      (** refresh the live state bits of frame [(row, col, minor)]
          before an FDRO read serves it; called only when a GCAPTURE is
          armed and the frame has not been written since *)
}

val null_hooks : hooks

type t = {
  slr_index : int;
  is_primary : bool;
  expected_idcode : int;
  layout : Geometry.region_layout;
  region_rows : int;
  frames : Frames.t;  (** this SLR's configuration plane *)
  mutable far : int * int * int;
  mutable mode : mode;
  mutable mask : int;
  mutable ctl0 : int;
  mutable hooks : hooks;
  mutable idcode_writes : int list;  (** every IDCODE value seen (newest first) *)
  mutable idcode_error : bool;  (** primary-only: IDCODE mismatch latched *)
  mutable synced : bool;
  dirty : (int * int * int, unit) Hashtbl.t;
      (** frames written via FDRI since the last GCAPTURE — what a
          GRESTORE drives back, and what a lazy capture must not clobber *)
  mutable captured : bool;  (** a GCAPTURE has armed lazy state readout *)
}

val create : device:Device.t -> slr_index:int -> t

val set_hooks : t -> hooks -> unit

(** Arm lazy capture and reset the dirty set — GCAPTURE's bookkeeping
    (the fabric becomes the source of truth for every state bit). *)
val arm_capture : t -> unit

val capture_armed : t -> bool

val mark_dirty : t -> int * int * int -> unit

val frame_dirty : t -> int * int * int -> bool

(** Forget a frame's dirty bit — after a GRESTORE applied it, frame and
    fabric agree again. *)
val mark_clean : t -> int * int * int -> unit

(** Frames written since the last GCAPTURE (unordered). *)
val dirty_keys : t -> (int * int * int) list

(** Is the CTL0 GSR-mask restriction in force (left set by a partial
    bitstream until readback clears it, §4.7)? *)
val gsr_restricted : t -> bool

val num_columns : t -> int

(** FAR auto-increment across (minor, column, row), in this SLR's
    geometry. *)
val advance_far : t -> unit

val far_valid : t -> bool

(** FDRI burst: write words into frames starting at FAR. *)
val write_fdri_words : t -> int array -> unit

(** FDRO burst: read [count] words from frames starting at FAR. *)
val read_fdro_words : t -> count:int -> int array

(** Register write as decoded from the packet stream. *)
val write_reg : t -> Packet.reg -> int array -> unit

val read_reg : t -> Packet.reg -> count:int -> int array
