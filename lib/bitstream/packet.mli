(** The bitstream command ISA: sync word, type-1/type-2 packet headers,
    configuration registers and CMD codes — including the undocumented
    [BOUT] register at the heart of §4.4's chiplet discovery.

    Word-accurate in the Xilinx UltraScale+ style: everything the board's
    configuration microcontrollers parse, and everything {!Program}
    assembles, goes through these encodings, and the roundtrip is
    property-tested. *)

(** [0xAA995566]. *)
val sync_word : int

(** [0xFFFFFFFF] (alignment / pipeline padding). *)
val nop_word : int

(** Configuration registers.  [Bout] forwards the remainder of the
    command stream one SLR along the master ring — writing k empty BOUT
    payloads addresses primary+k (§4.4). *)
type reg = Crc | Far | Fdri | Fdro | Cmd | Ctl0 | Mask | Stat | Idcode | Bout

val reg_addr : reg -> int

val reg_of_addr : int -> reg option

val reg_name : reg -> string

(** CMD register codes: configuration state-machine commands. *)
type command =
  | Cmd_null
  | Cmd_wcfg  (** enable frame writes through FDRI *)
  | Cmd_rcfg  (** enable frame reads through FDRO *)
  | Cmd_start  (** release the start-up sequence *)
  | Cmd_rcrc
  | Cmd_gcapture  (** capture live FF state into frames *)
  | Cmd_grestore  (** drive frame state back into FFs *)
  | Cmd_shutdown
  | Cmd_desync

val command_code : command -> int

val command_of_code : int -> command option

type opcode = Op_nop | Op_read | Op_write

(** A decoded packet header.  [Type2] extends the preceding type-1 packet
    with a large word count (frame data bursts). *)
type header =
  | Type1 of { op : opcode; reg : int; count : int }
  | Type2 of { op : opcode; count : int }
  | Sync
  | Dummy
  | Raw of int

val opcode_bits : opcode -> int

val opcode_of_bits : int -> opcode option

(** Encode a type-1 header. *)
val type1 : op:opcode -> reg:int -> count:int -> int

(** Encode a type-2 header. *)
val type2 : op:opcode -> count:int -> int

(** Decode one word as seen by a configuration microcontroller. *)
val decode : int -> header

(** {1 Frame Address Register layout} *)

val far_encode : row:int -> col:int -> minor:int -> int

val far_decode : int -> int * int * int

val pp_header : Format.formatter -> header -> unit
