(** The simulated FPGA board (an Alveo-class card on a JTAG cable).

    This is the stand-in for the paper's physical U200: a set of per-SLR
    configuration microcontrollers on the §4 BOUT ring, plus a live
    netlist-level model of whatever design the configuration frames
    currently describe.  Every interaction — configuration, readback,
    state capture/restore — happens by {!execute}-ing real bitstream
    command words through the primary SLR, exactly the traffic a real
    cable would carry, with the time charged to the JTAG transport model.

    The substitution this module embodies (see DESIGN.md): the paper's
    hardware gates become a cycle-accurate netlist simulator whose FF and
    memory state is indexed by the same logic-location map a real
    readback flow uses, so all of Zoomie's host-side machinery runs
    unchanged. *)

module Netsim = Zoomie_synth.Netsim
module Netsim_batch = Zoomie_synth.Netsim_batch
module Netlist = Zoomie_synth.Netlist
open Zoomie_fabric

(** What a bitstream configures, beyond raw frames: the netlist the
    frames were generated from and the placement that maps state bits to
    frame addresses.  A real flow recovers this from the checkpoint +
    logic-location file; we carry it alongside the words. *)
type payload = {
  netlist : Netlist.t;
  locmap : Loc.map;
  clock_root : string;
  freq_mhz : float;
}

type bitstream = {
  bs_words : int array;  (** the raw configuration command stream *)
  bs_payload : payload option;
  bs_partial : bool;  (** partial reconfiguration (state-preserving) *)
  bs_dynamic : Region.t list;  (** regions being reconfigured *)
}

(** The state bits resident in one configuration frame (reverse of the
    locmap): precomputed per design so capture/restore touch only the
    frames a readback actually transfers. *)
type frame_bits = {
  fb_ffs : (int * int * int) array;  (** ff index, frame word, frame bit *)
  fb_mems : (int * int * int * int * int) array;
      (** mem index, addr, mem bit, frame word, frame bit *)
}

type t = {
  device : Device.t;
  ucs : Uc.t array;  (** one configuration uc per SLR *)
  mutable design : (payload * Netsim.t) option;
  mutable batch : Netsim_batch.t option;  (** lazy 63-lane shadow model *)
  mutable dynamic_regions : Region.t list;
  meter : Jtag.Meter.t;  (** the instrumented transport meter *)
  mutable fpga_cycles : int;  (** user-clock cycles executed *)
  mutable lease : string option;  (** advisory ownership lease *)
  mutable state_index :
    (payload * (int * int * int, frame_bits) Hashtbl.t array) option;
      (** per-SLR frame-key -> state-bits cache for the keyed payload *)
  mutable cable_scale : float;
      (** wall seconds slept per modeled cable second (0 = pure model) *)
  mutable cable_debt : float;
      (** unslept cable wall time, paid off in >=5ms chunks *)
}

val create : Device.t -> t

val device : t -> Device.t

(** Modeled seconds spent on the JTAG cable so far (§5.3 accounting):
    {!Jtag.Meter.seconds} of the board's meter. *)
val jtag_seconds : t -> float

(** The board's transport meter — every {!execute} charges it once. *)
val meter : t -> Jtag.Meter.t

(** Wall-clock cable emulation: sleep [scale] wall seconds per modeled
    cable second inside every {!execute}.  A debug farm enables this so
    cable occupancy is real to the scheduler — one cable per board,
    serial on each board, overlapping across boards — at a compression
    factor the harness picks.  0 (the default) keeps the transport
    purely virtual-time; tests and single-board flows never need it. *)
val set_cable_scale : t -> float -> unit

val cable_scale : t -> float

val fpga_cycles : t -> int

(** {1 Ownership lease}

    An advisory single-owner lease over the cable, for arbitrated
    front-ends (the hub) that must not share a board with another driver.
    The board itself does not enforce it — a lone {!Host.t} session on a
    private board never needs one — but any multiplexer should acquire it
    before issuing traffic and refuse boards leased elsewhere. *)

(** [Error msg] when another owner already holds the lease.  Re-acquiring
    under the same owner name is idempotent. *)
val acquire_lease : t -> owner:string -> (unit, string) result

(** Release only if held by [owner]; otherwise a no-op. *)
val release_lease : t -> owner:string -> unit

val lease_owner : t -> string option

(** {1 Transfer accounting}

    Batched-sweep bookkeeping: how many {!execute} calls the board has
    served and how many 32-bit words (command + response) they moved.
    A coalescing scheduler shows its win here — fewer transfers moving
    fewer total words than its clients would issue individually. *)

val transfer_count : t -> int

val words_transferred : t -> int

(** Modeled wall-clock of the fabric itself: {!fpga_cycles} at the
    configured user-clock frequency. *)
val fpga_seconds : t -> float

(** The live design model.  (Re)configuring the board — {!load} or a VTI
    partial bitstream — replaces the model, so re-fetch this handle after
    every programming operation.  @raise Invalid_argument if nothing is
    loaded. *)
val netsim : t -> Netsim.t

(** Netlist + placement of the currently-configured design.
    @raise Invalid_argument if nothing is loaded. *)
val payload : t -> payload

(** The 63-lane batch shadow model of the loaded design ({!Netsim_batch}),
    compiled lazily on first use and invalidated whenever {!load}
    replaces the design.  It is a fuzz farm beside the live model — 63
    independent stimulus scenarios advance per settle against the same
    netlist — and runs entirely off-cable: no JTAG charge, no
    {!fpga_cycles} advance.  @raise Invalid_argument if nothing is
    loaded. *)
val batch_sim : t -> Netsim_batch.t

(** Advance the batch shadow model [n] root-clock cycles in all 63 lanes
    (off-cable; the board's own clock does not move). *)
val run_batch : t -> int -> unit

(** The configuration microcontroller of SLR [i] (for tests poking at the
    §4 mechanics directly). *)
val uc : t -> int -> Uc.t

(** {1 State movement between fabric and configuration frames}

    These are the GCAPTURE / GRESTORE / start-up mechanics of §4.5,
    honoring the CTL0 GSR mask restriction of §4.7: when a partial
    reconfiguration has left the mask set, only state inside the dynamic
    regions is visible to capture/restore. *)

(** Iterate the FF cells resident on one SLR (index, site, live model). *)
val iter_slr_ffs : t -> slr:int -> (int -> Loc.ff_site -> Netsim.t -> unit) -> unit

(** Iterate the memory bits resident on one SLR, with both their logical
    coordinates (memory index, address, bit) and their frame coordinates
    (site key, frame word, bit-in-word). *)
val iter_slr_mem_bits :
  t ->
  slr:int ->
  (mi:int ->
  addr:int ->
  bit:int ->
  key:int * int * int ->
  word:int ->
  fbit:int ->
  Netsim.t ->
  unit) ->
  unit

(** GCAPTURE on one SLR, eagerly: snapshot live FF/memory state into its
    frames.  The packet-stream path is lazier — a GCAPTURE command only
    arms the µc, and each frame's state bits materialize when an FDRO
    read actually serves that frame — but this entry point materializes
    everything at once for direct frame inspection. *)
val capture_slr : t -> int -> unit

(** GRESTORE on one SLR: drive the frames written since the last
    GCAPTURE back into live state (clean frames already mirror the
    fabric, so the full-SLR sweep they used to get was a no-op). *)
val restore_slr : t -> int -> unit

(** Release the start-up sequence on one SLR (end of configuration). *)
val start_slr : t -> int -> unit

(** {1 The cable} *)

(** Push a command stream through the primary SLR's configuration port and
    return the read-data words it produced.  BOUT writes hop the remainder
    of the stream one SLR further along the ring (§4.4); time is charged
    to {!jtag_seconds} per the transport model in {!module:Jtag}. *)
val execute : t -> int array -> int array

(** What {!execute}-ing [stream] would charge the meter, computed from
    the stream alone (no board state touched, no traffic issued). *)
val stream_counts : int array -> Jtag.Meter.counts

(** [Jtag.Meter.price (stream_counts stream)]: the modeled standalone
    cost of a transfer, through the same cost function the executor
    charges with — schedulers price hypothetical traffic here so their
    baselines can never drift from the transport model. *)
val price_stream : int array -> float

(** Configure the board from a bitstream.  A full bitstream resets and
    replaces everything.  A partial bitstream ([bs_partial]) swaps in the
    new design model but carries over all live state outside the dynamic
    regions — and, like the environment it models, keeps the values being
    driven into the board's input pins. *)
val load : t -> bitstream -> unit

(** Used by {!load} for partial reconfiguration; exposed for the VTI
    tests: copy state (and input-pin drives) from the old model into the
    new one, except inside [dynamic] regions. *)
val carry_over_state : t -> Netsim.t -> payload -> dynamic:Region.t list -> unit

(** Advance the user clock [n] cycles (no cable traffic). *)
val run : t -> int -> unit

(** [run_until t ~stop_net n] advances up to [n] user-clock cycles but
    returns as soon as net [stop_net] settles high after an edge — the
    debug controller's stop latch, folded into the simulation kernel's
    batched loop.  Returns the cycles actually run.  No cable traffic;
    the host still pays its JTAG polls to {e observe} the stop. *)
val run_until : t -> stop_net:int -> int -> int
