(** JTAG transport timing model.

    Calibrated so that a naive full-SLR readback of the modeled U200 takes
    ~33.5 s and an SLR-aware MUT readback ~0.4 s, the regimes reported in
    Table 3.  The structure of the costs (per-word shift time, fixed
    sync/setup overhead, per-hop ring latency, capture latency) mirrors the
    physical transport; only the constants are fitted. *)

(** Seconds to shift one 32-bit configuration word through JTAG. *)
let word_seconds = 1.26e-5

(** Fixed cost of synchronizing and setting up a command sequence. *)
let sync_seconds = 0.25

(** Latency of one BOUT hop along the interposer ring. *)
let hop_seconds = 0.006

(** GCAPTURE: transferring FF/BRAM state into configuration frames. *)
let gcapture_seconds = 0.08

(** GRESTORE: loading state back from frames. *)
let grestore_seconds = 0.05

let transfer_seconds ~words = float_of_int words *. word_seconds

(* Command-stream overhead of one capture+readback sweep, in words: the
   sync/desync bracket plus a FAR write and read request per column.  The
   constant mirrors what Readback's executor actually emits; it exists so
   schedulers can price a sweep without assembling it. *)
let sweep_command_words ~columns = 4 + (4 * columns)

let sweep_seconds ~hops ~columns ~words =
  sync_seconds
  +. (float_of_int hops *. hop_seconds)
  +. gcapture_seconds
  +. transfer_seconds ~words:(words + sweep_command_words ~columns)
