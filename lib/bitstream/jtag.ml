(** JTAG transport timing model.

    Calibrated so that a naive full-SLR readback of the modeled U200 takes
    ~33.5 s and an SLR-aware MUT readback ~0.4 s, the regimes reported in
    Table 3.  The structure of the costs (per-word shift time, fixed
    sync/setup overhead, per-hop ring latency, capture latency) mirrors the
    physical transport; only the constants are fitted. *)

(** Seconds to shift one 32-bit configuration word through JTAG. *)
let word_seconds = 1.26e-5

(** Fixed cost of synchronizing and setting up a command sequence. *)
let sync_seconds = 0.25

(** Latency of one BOUT hop along the interposer ring. *)
let hop_seconds = 0.006

(** GCAPTURE: transferring FF/BRAM state into configuration frames. *)
let gcapture_seconds = 0.08

(** GRESTORE: loading state back from frames. *)
let grestore_seconds = 0.05

let transfer_seconds ~words = float_of_int words *. word_seconds

(* Command-stream overhead of one capture+readback sweep, in words: the
   sync/desync bracket plus a FAR write and read request per column.  The
   constant mirrors what Readback's executor actually emits; it exists so
   schedulers can price a sweep without assembling it. *)
let sweep_command_words ~columns = 4 + (4 * columns)

module Meter = struct
  type counts = {
    m_words : int;
    m_syncs : int;
    m_hops : int;
    m_gcaptures : int;
    m_grestores : int;
  }

  let zero = { m_words = 0; m_syncs = 0; m_hops = 0; m_gcaptures = 0; m_grestores = 0 }

  let add a b =
    {
      m_words = a.m_words + b.m_words;
      m_syncs = a.m_syncs + b.m_syncs;
      m_hops = a.m_hops + b.m_hops;
      m_gcaptures = a.m_gcaptures + b.m_gcaptures;
      m_grestores = a.m_grestores + b.m_grestores;
    }

  (* THE cost function.  Everything that prices cable traffic — the
     board's executor, a scheduler pricing a hypothetical sweep, the
     hub's serial baseline — must come through here, so the constants
     can never be combined inconsistently in two places. *)
  let price c =
    transfer_seconds ~words:c.m_words
    +. (float_of_int c.m_syncs *. sync_seconds)
    +. (float_of_int c.m_hops *. hop_seconds)
    +. (float_of_int c.m_gcaptures *. gcapture_seconds)
    +. (float_of_int c.m_grestores *. grestore_seconds)

  type t = {
    mutable total : counts;
    mutable seconds : float;
    mutable transfers : int;
  }

  (* The registry handles are global: several boards (hub benches run
     two) aggregate into one set of transport counters. *)
  let obs_words = Zoomie_obs.Obs.counter "jtag.words"
  let obs_syncs = Zoomie_obs.Obs.counter "jtag.syncs"
  let obs_hops = Zoomie_obs.Obs.counter "jtag.hops"
  let obs_gcaptures = Zoomie_obs.Obs.counter "jtag.gcaptures"
  let obs_grestores = Zoomie_obs.Obs.counter "jtag.grestores"
  let obs_transfers = Zoomie_obs.Obs.counter "jtag.transfers"
  let obs_seconds = Zoomie_obs.Obs.gauge "jtag.seconds"
  let obs_batch_words = Zoomie_obs.Obs.histogram "jtag.transfer_words"

  let create () = { total = zero; seconds = 0.0; transfers = 0 }

  (* One call per cable transfer.  The per-batch accumulation order is
     deliberate: [seconds] grows by [price batch] exactly as observers
     sampling the meter around each transfer would sum it, so a span
     built on the meter's clock can never disagree with the total (float
     addition is not associative; pricing a grand-total count would). *)
  let charge t batch =
    t.total <- add t.total batch;
    t.seconds <- t.seconds +. price batch;
    t.transfers <- t.transfers + 1;
    let module O = Zoomie_obs.Obs in
    O.incr ~by:batch.m_words obs_words;
    O.incr ~by:batch.m_syncs obs_syncs;
    O.incr ~by:batch.m_hops obs_hops;
    O.incr ~by:batch.m_gcaptures obs_gcaptures;
    O.incr ~by:batch.m_grestores obs_grestores;
    O.incr obs_transfers;
    O.set_gauge obs_seconds (O.gauge_value obs_seconds +. price batch);
    O.observe obs_batch_words (float_of_int batch.m_words)

  let counts t = t.total
  let seconds t = t.seconds
  let transfers t = t.transfers
end

let sweep_seconds ~hops ~columns ~words =
  Meter.price
    {
      Meter.m_words = words + sweep_command_words ~columns;
      m_syncs = 1;
      m_hops = hops;
      m_gcaptures = 1;
      m_grestores = 0;
    }
