(** Host-side bitstream assembler: builds the word streams the configuration
    microcontrollers interpret.  Zoomie's host tooling and the vendor
    bitstream writer both emit through this module, so the §4 mechanics
    (BOUT hops, IDCODE checks, GSR masks) are exercised by every flow. *)

type t = { mutable buf : int array; mutable count : int }

let create () = { buf = Array.make 256 0; count = 0 }

let emit t w =
  if t.count = Array.length t.buf then begin
    let bigger = Array.make (2 * t.count) 0 in
    Array.blit t.buf 0 bigger 0 t.count;
    t.buf <- bigger
  end;
  t.buf.(t.count) <- w land 0xFFFFFFFF;
  t.count <- t.count + 1

let words t = Array.sub t.buf 0 t.count

let sync t = emit t Packet.sync_word
let nop ?(n = 1) t = for _ = 1 to n do emit t Packet.nop_word done

let write_reg t reg values =
  emit t (Packet.type1 ~op:Packet.Op_write ~reg:(Packet.reg_addr reg)
            ~count:(List.length values));
  List.iter (emit t) values

let cmd t c = write_reg t Packet.Cmd [ Packet.command_code c ]

let set_far t ~row ~col ~minor =
  write_reg t Packet.Far [ Packet.far_encode ~row ~col ~minor ]

(** One empty BOUT write plus padding: hop JTAG control one SLR along the
    ring (§4.4).  [k] consecutive hops land on primary+k. *)
let bout_hop t =
  emit t (Packet.type1 ~op:Packet.Op_write ~reg:(Packet.reg_addr Packet.Bout) ~count:0);
  nop ~n:4 t

let select_slr t ~hops = for _ = 1 to hops do bout_hop t done

(** Burst-write [frames] consecutive frames starting at the current FAR. *)
let write_frames t datas =
  cmd t Packet.Cmd_wcfg;
  let total = List.fold_left (fun n d -> n + Array.length d) 0 datas in
  if total <= 0x7FF then
    emit t (Packet.type1 ~op:Packet.Op_write ~reg:(Packet.reg_addr Packet.Fdri) ~count:total)
  else begin
    emit t (Packet.type1 ~op:Packet.Op_write ~reg:(Packet.reg_addr Packet.Fdri) ~count:0);
    emit t (Packet.type2 ~op:Packet.Op_write ~count:total)
  end;
  List.iter (fun d -> Array.iter (emit t) d) datas

(** Request readback of [words] words starting at the current FAR.  The
    response words appear on the JTAG return path. *)
let read_frames t ~words:n =
  cmd t Packet.Cmd_rcfg;
  if n <= 0x7FF then
    emit t (Packet.type1 ~op:Packet.Op_read ~reg:(Packet.reg_addr Packet.Fdro) ~count:n)
  else begin
    emit t (Packet.type1 ~op:Packet.Op_read ~reg:(Packet.reg_addr Packet.Fdro) ~count:0);
    emit t (Packet.type2 ~op:Packet.Op_read ~count:n)
  end

let write_idcode t code = write_reg t Packet.Idcode [ code ]

(** MASK-gated CTL0 update (bit 0 = restrict GSR/capture to the dynamic
    region during partial reconfiguration). *)
let set_ctl0 t ~mask ~value =
  write_reg t Packet.Mask [ mask ];
  write_reg t Packet.Ctl0 [ value ]

let gcapture t = cmd t Packet.Cmd_gcapture
let grestore t = cmd t Packet.Cmd_grestore
let start t = cmd t Packet.Cmd_start
let desync t = cmd t Packet.Cmd_desync
