(** Sparse configuration-frame store: one per SLR microcontroller.

    Frames are keyed by (row, column, minor) and allocated on first
    touch; a frame is {!Zoomie_fabric.Geometry.words_per_frame} words.
    This is the "SRAM" a real device's configuration plane writes — the
    board reads LUT equations, FF init/captured state and memory contents
    out of it. *)

(** (row, column, minor). *)
type key = int * int * int

type t

val create : unit -> t

(** The frame at [key], allocating zeroed storage on first touch. *)
val frame : t -> key -> int array

val read_word : t -> key -> int -> int

val write_word : t -> key -> int -> int -> unit

val get_bit : t -> key -> word:int -> bit:int -> bool

val set_bit : t -> key -> word:int -> bit:int -> bool -> unit

(** Copy of the frame's contents. *)
val read_frame : t -> key -> int array

val write_frame : t -> key -> int array -> unit

(** Number of frames touched so far. *)
val allocated : t -> int

val clear : t -> unit
