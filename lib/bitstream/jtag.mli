(** JTAG transport timing model.

    All host-board traffic is charged per word at an effective cable
    bandwidth calibrated so Table 3's absolute numbers land where the
    paper reports them (full-SLR sweep ≈ 33.6 s; a Zoomie selective plan
    ≈ 0.4 s).  Fixed costs model command/state-machine overheads: this is
    why per-SLR times differ only by their BOUT hops. *)

(** Seconds per 32-bit word shifted through the cable. *)
val word_seconds : float

(** Fixed cost of a sync/command preamble. *)
val sync_seconds : float

(** Extra cost of one BOUT ring hop (§4.6: why secondary SLRs read
    slower). *)
val hop_seconds : float

val gcapture_seconds : float

val grestore_seconds : float

(** Total modeled time to move [words] words plus per-transfer overhead. *)
val transfer_seconds : words:int -> float

(** Command-stream overhead (in words) of one capture+readback sweep
    addressing [columns] columns: the sync bracket plus FAR writes and
    read requests. *)
val sweep_command_words : columns:int -> int

(** The single instrumented transport meter.

    All cable-time arithmetic goes through {!Meter.price}: the board's
    executor charges each transfer's {!Meter.counts} through a meter,
    and anything that wants to price hypothetical traffic (a scheduler
    comparing a coalesced sweep against its serial baseline) prices the
    same counts through the same function — so the two can never drift.

    Pricing is per-batch on purpose: float addition is not associative,
    and [price (add a b)] differs from [price a +. price b] in the last
    bits.  A meter accumulates [price batch] once per transfer, which is
    exactly how any observer sampling {!Meter.seconds} around transfers
    would sum it. *)
module Meter : sig
  (** What one cable transfer moved/did, in model units. *)
  type counts = {
    m_words : int;  (** command + response words shifted *)
    m_syncs : int;
    m_hops : int;  (** BOUT ring hops *)
    m_gcaptures : int;
    m_grestores : int;
  }

  val zero : counts
  val add : counts -> counts -> counts

  (** Modeled seconds of a transfer with these counts — the only place
      the timing constants are combined. *)
  val price : counts -> float

  type t

  val create : unit -> t

  (** Charge one transfer: accumulates counts and [price batch] seconds,
      and feeds the global [jtag.*] observability metrics. *)
  val charge : t -> counts -> unit

  val counts : t -> counts
  val seconds : t -> float
  val transfers : t -> int
end

(** Modeled cost of executing one capture+readback sweep on one SLR,
    standalone: sync, [hops] BOUT hops, GCAPTURE, the command words for
    [columns] columns and the [words] response words.  This is what a
    readback plan would cost a session running alone — the baseline a
    coalescing scheduler compares its batched sweeps against. *)
val sweep_seconds : hops:int -> columns:int -> words:int -> float
