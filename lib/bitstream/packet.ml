(** Bitstream word format: the configuration ISA interpreted by each SLR's
    microcontroller (§4.1).

    - [0xAA995566] synchronizes the start of a command sequence.
    - [0xFFFFFFFF] is dummy padding compensating for microcontroller busy
      time (§4.4).
    - Type-1 packets carry an opcode, a configuration register address and a
      short word count; type-2 packets extend the count for long FDRI/FDRO
      bursts.

    The undocumented [BOUT] register is the heart of the §4.4 discovery:
    empty writes to it hop JTAG control to the next SLR on the interposer
    ring. *)

let sync_word = 0xAA995566
let nop_word = 0xFFFFFFFF

type reg =
  | Crc
  | Far    (** frame address *)
  | Fdri   (** frame data input *)
  | Fdro   (** frame data output (readback) *)
  | Cmd
  | Ctl0
  | Mask
  | Stat
  | Idcode
  | Bout   (** undocumented: SLR ring hop *)

let reg_addr = function
  | Crc -> 0
  | Far -> 1
  | Fdri -> 2
  | Fdro -> 3
  | Cmd -> 4
  | Ctl0 -> 5
  | Mask -> 6
  | Stat -> 7
  | Idcode -> 12
  | Bout -> 24

let reg_of_addr = function
  | 0 -> Some Crc
  | 1 -> Some Far
  | 2 -> Some Fdri
  | 3 -> Some Fdro
  | 4 -> Some Cmd
  | 5 -> Some Ctl0
  | 6 -> Some Mask
  | 7 -> Some Stat
  | 12 -> Some Idcode
  | 24 -> Some Bout
  | _ -> None

let reg_name = function
  | Crc -> "CRC"
  | Far -> "FAR"
  | Fdri -> "FDRI"
  | Fdro -> "FDRO"
  | Cmd -> "CMD"
  | Ctl0 -> "CTL0"
  | Mask -> "MASK"
  | Stat -> "STAT"
  | Idcode -> "IDCODE"
  | Bout -> "BOUT"

(** CMD register command codes. *)
type command =
  | Cmd_null
  | Cmd_wcfg      (** enable config-memory writes *)
  | Cmd_rcfg      (** enable config-memory reads *)
  | Cmd_start     (** start clocks, raise GSR *)
  | Cmd_rcrc      (** reset CRC *)
  | Cmd_gcapture  (** capture FF/BRAM state into config frames *)
  | Cmd_grestore  (** load FF/BRAM state from config frames *)
  | Cmd_shutdown
  | Cmd_desync

let command_code = function
  | Cmd_null -> 0
  | Cmd_wcfg -> 1
  | Cmd_rcfg -> 4
  | Cmd_start -> 5
  | Cmd_rcrc -> 7
  | Cmd_gcapture -> 12
  | Cmd_grestore -> 10
  | Cmd_shutdown -> 11
  | Cmd_desync -> 13

let command_of_code = function
  | 0 -> Some Cmd_null
  | 1 -> Some Cmd_wcfg
  | 4 -> Some Cmd_rcfg
  | 5 -> Some Cmd_start
  | 7 -> Some Cmd_rcrc
  | 12 -> Some Cmd_gcapture
  | 10 -> Some Cmd_grestore
  | 11 -> Some Cmd_shutdown
  | 13 -> Some Cmd_desync
  | _ -> None

type opcode = Op_nop | Op_read | Op_write

(** Decoded packet header. *)
type header =
  | Type1 of { op : opcode; reg : int; count : int }
  | Type2 of { op : opcode; count : int }
  | Sync
  | Dummy
  | Raw of int  (** unrecognized word *)

let opcode_bits = function Op_nop -> 0 | Op_read -> 1 | Op_write -> 2

let opcode_of_bits = function
  | 0 -> Some Op_nop
  | 1 -> Some Op_read
  | 2 -> Some Op_write
  | _ -> None

(** Encode a type-1 header: [001 | op(2) | reg(14) | pad(2) | count(11)]. *)
let type1 ~op ~reg ~count =
  if count < 0 || count > 0x7FF then invalid_arg "Packet.type1: count";
  (0b001 lsl 29) lor (opcode_bits op lsl 27) lor ((reg land 0x3FFF) lsl 13)
  lor (count land 0x7FF)

(** Encode a type-2 header: [010 | op(2) | count(27)]. *)
let type2 ~op ~count =
  if count < 0 || count > 0x7FFFFFF then invalid_arg "Packet.type2: count";
  (0b010 lsl 29) lor (opcode_bits op lsl 27) lor (count land 0x7FFFFFF)

let decode w =
  if w = sync_word then Sync
  else if w = nop_word then Dummy
  else
    let tag = (w lsr 29) land 0x7 in
    let opb = (w lsr 27) land 0x3 in
    match (tag, opcode_of_bits opb) with
    | 1, Some op ->
      Type1 { op; reg = (w lsr 13) land 0x3FFF; count = w land 0x7FF }
    | 2, Some op -> Type2 { op; count = w land 0x7FFFFFF }
    | _ -> Raw w

(** Frame-address word layout: row[26:19] | col[18:7] | minor[6:0]. *)
let far_encode ~row ~col ~minor =
  if minor < 0 || minor > 0x7F then invalid_arg "Packet.far_encode: minor";
  if col < 0 || col > 0xFFF then invalid_arg "Packet.far_encode: col";
  if row < 0 || row > 0xFF then invalid_arg "Packet.far_encode: row";
  (row lsl 19) lor (col lsl 7) lor minor

let far_decode w = ((w lsr 19) land 0xFF, (w lsr 7) land 0xFFF, w land 0x7F)

let pp_header fmt = function
  | Sync -> Fmt.string fmt "SYNC"
  | Dummy -> Fmt.string fmt "DUMMY"
  | Type1 { op; reg; count } ->
    let o = match op with Op_nop -> "NOP" | Op_read -> "RD" | Op_write -> "WR" in
    let r = match reg_of_addr reg with Some r -> reg_name r | None -> string_of_int reg in
    Fmt.pf fmt "T1 %s %s #%d" o r count
  | Type2 { op; count } ->
    let o = match op with Op_nop -> "NOP" | Op_read -> "RD" | Op_write -> "WR" in
    Fmt.pf fmt "T2 %s #%d" o count
  | Raw w -> Fmt.pf fmt "RAW %08x" w
