(** One RTL module: signals, clocks, registers, memories, combinational
    assigns, and instances of other modules.

    Built with {!Builder}, validated by {!Check}, simulated by
    {!Zoomie_sim.Simulator}, flattened by {!Flat}, synthesized by
    {!Zoomie_synth.Synthesize}.  Signals are numbered within the module;
    names become hierarchical (dot-separated) at elaboration. *)

open Expr

type direction = Input | Output

type signal = {
  id : signal_id;
  name : string;
  width : int;
  direction : direction option;  (** [None] for internal wires *)
}

(** Gated clocks are first-class: the Debug Controller's pause is a gated
    clock, and elaboration/synthesis/simulation all preserve the gating
    chain rather than lowering it to logic. *)
type clock =
  | Root_clock of string
  | Gated_clock of { name : string; parent : string; enable : Expr.t }

type register = {
  q : signal_id;
  clock : string;
  next : Expr.t;
  enable : Expr.t option;  (** clock enable (maps to the FF's CE pin) *)
  reset : (Expr.t * Bits.t) option;  (** synchronous reset *)
  init : Bits.t;  (** power-on / GSR value *)
}

type write_port = {
  w_clock : string;
  w_enable : Expr.t;
  w_addr : Expr.t;
  w_data : Expr.t;
}

type read_kind = Read_comb | Read_sync of string

type read_port = { r_addr : Expr.t; r_out : signal_id; r_kind : read_kind }

type memory = {
  mem_name : string;
  mem_width : int;
  mem_depth : int;
  writes : write_port list;
  reads : read_port list;
  mem_init : Bits.t array option;
}

type assign = { lhs : signal_id; rhs : Expr.t }

(** Port bindings of an instance. *)
type connection =
  | Drive_input of string * Expr.t
  | Read_output of string * signal_id

type instance = {
  inst_name : string;
  module_name : string;
  connections : connection list;
  clock_map : (string * string) list;  (** child clock -> parent clock *)
}

type t = {
  name : string;
  signals : signal array;
  clocks : clock list;
  registers : register list;
  memories : memory list;
  assigns : assign list;
  instances : instance list;
}

(** {1 Lookups} *)

val signal : t -> signal_id -> signal

val signal_width : t -> signal_id -> int

val signal_name : t -> signal_id -> string

(** @raise Not_found for an unknown name. *)
val find_signal : t -> string -> signal

val inputs : t -> signal list

val outputs : t -> signal list

val clock_names : t -> string list

val is_root_clock : t -> string -> bool

(** Rough size metric (signals + assigns + registers + memory bits). *)
val complexity : t -> int
