(** Structural checks over flat circuits: width consistency, single-driver
    discipline and combinational-cycle detection.  The topological order
    computed here is reused by the simulator and the synthesizer. *)

type error =
  | Width_mismatch of { where : string; expected : int; got : int }
  | Multiple_drivers of string
  | No_driver of string
  | Combinational_cycle of string list
  | Unknown_clock of string

let pp_error fmt = function
  | Width_mismatch { where; expected; got } ->
    Fmt.pf fmt "width mismatch at %s: expected %d, got %d" where expected got
  | Multiple_drivers s -> Fmt.pf fmt "signal %s has multiple drivers" s
  | No_driver s -> Fmt.pf fmt "signal %s has no driver" s
  | Combinational_cycle path ->
    Fmt.pf fmt "combinational cycle: %a" Fmt.(list ~sep:(any " -> ") string) path
  | Unknown_clock c -> Fmt.pf fmt "unknown clock %s" c

exception Check_error of error

let error_to_string e = Fmt.str "%a" pp_error e

(* Width validation of a single expression tree. *)
let rec check_widths_expr c ~where e =
  let w = Circuit.signal_width c in
  let self = Expr.width_of w e in
  (match e with
  | Expr.Const _ | Expr.Signal _ -> ()
  | Expr.Not a -> ignore (check_widths_expr c ~where a)
  | Expr.And (a, b) | Expr.Or (a, b) | Expr.Xor (a, b)
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b)
  | Expr.Eq (a, b) | Expr.Lt (a, b) ->
    ignore (check_widths_expr c ~where a);
    ignore (check_widths_expr c ~where b);
    let wa = Expr.width_of w a and wb = Expr.width_of w b in
    if wa <> wb then
      raise (Check_error (Width_mismatch { where; expected = wa; got = wb }))
  | Expr.Mux (s, a, b) ->
    ignore (check_widths_expr c ~where s);
    ignore (check_widths_expr c ~where a);
    ignore (check_widths_expr c ~where b);
    let ws = Expr.width_of w s in
    if ws <> 1 then
      raise (Check_error (Width_mismatch { where; expected = 1; got = ws }));
    let wa = Expr.width_of w a and wb = Expr.width_of w b in
    if wa <> wb then
      raise (Check_error (Width_mismatch { where; expected = wa; got = wb }))
  | Expr.Concat (a, b) ->
    ignore (check_widths_expr c ~where a);
    ignore (check_widths_expr c ~where b)
  | Expr.Slice (a, hi, lo) ->
    ignore (check_widths_expr c ~where a);
    let wa = Expr.width_of w a in
    if lo < 0 || hi >= wa || hi < lo then
      raise (Check_error (Width_mismatch { where; expected = wa; got = hi + 1 }))
  | Expr.Shift_left (a, _) | Expr.Shift_right (a, _)
  | Expr.Reduce_or a | Expr.Reduce_and a | Expr.Reduce_xor a ->
    ignore (check_widths_expr c ~where a));
  self

type driver =
  | By_assign of int   (* index into assigns *)
  | By_register
  | By_mem_read
  | By_input

(** Driver table: for each signal, how it is produced. *)
let drivers (c : Circuit.t) =
  let n = Array.length c.signals in
  let d : driver option array = Array.make n None in
  let set id who =
    match d.(id) with
    | None -> d.(id) <- Some who
    | Some _ ->
      raise (Check_error (Multiple_drivers (Circuit.signal_name c id)))
  in
  Array.iter
    (fun (s : Circuit.signal) ->
      if s.direction = Some Circuit.Input then set s.id By_input)
    c.signals;
  List.iter (fun (r : Circuit.register) -> set r.q By_register) c.registers;
  List.iter
    (fun (m : Circuit.memory) ->
      List.iter (fun (r : Circuit.read_port) -> set r.r_out By_mem_read) m.reads)
    c.memories;
  List.iteri
    (fun i (a : Circuit.assign) -> set a.lhs (By_assign i))
    c.assigns;
  d

(** Topologically order the assigns so each is evaluated after everything it
    reads.  Registers, memories and inputs are sources.  Raises on cycles. *)
let topo_assigns (c : Circuit.t) =
  let d = drivers c in
  let assigns = Array.of_list c.assigns in
  let n = Array.length assigns in
  let state = Array.make n 0 (* 0 unvisited, 1 visiting, 2 done *) in
  let order = ref [] in
  let rec visit i stack =
    match state.(i) with
    | 2 -> ()
    | 1 ->
      let name j = Circuit.signal_name c assigns.(j).Circuit.lhs in
      raise (Check_error (Combinational_cycle (List.rev_map name (i :: stack))))
    | _ ->
      state.(i) <- 1;
      Expr.fold_signals
        (fun () id ->
          match d.(id) with
          | Some (By_assign j) -> visit j (i :: stack)
          | Some (By_register | By_mem_read | By_input) | None -> ())
        () assigns.(i).Circuit.rhs;
      state.(i) <- 2;
      order := i :: !order
  in
  for i = 0 to n - 1 do
    visit i []
  done;
  Array.of_list (List.rev_map (fun i -> assigns.(i)) !order)

(** Full structural validation of a flat circuit.  Returns the topologically
    ordered assigns on success. *)
let validate (c : Circuit.t) =
  if c.instances <> [] then
    invalid_arg "Check.validate: circuit must be flat (no instances)";
  let w = Circuit.signal_width c in
  (* Every non-input signal must have a driver. *)
  let d = drivers c in
  Array.iter
    (fun (s : Circuit.signal) ->
      if d.(s.id) = None then
        raise (Check_error (No_driver s.name)))
    c.signals;
  (* Width checks. *)
  List.iter
    (fun (a : Circuit.assign) ->
      let where = Circuit.signal_name c a.lhs in
      let got = check_widths_expr c ~where a.rhs in
      if got <> w a.lhs then
        raise (Check_error (Width_mismatch { where; expected = w a.lhs; got })))
    c.assigns;
  List.iter
    (fun (r : Circuit.register) ->
      let where = Circuit.signal_name c r.q in
      let got = check_widths_expr c ~where r.next in
      if got <> w r.q then
        raise (Check_error (Width_mismatch { where; expected = w r.q; got }));
      Option.iter
        (fun e ->
          let we = check_widths_expr c ~where e in
          if we <> 1 then
            raise (Check_error (Width_mismatch { where; expected = 1; got = we })))
        r.enable;
      Option.iter
        (fun (e, v) ->
          let we = check_widths_expr c ~where e in
          if we <> 1 then
            raise (Check_error (Width_mismatch { where; expected = 1; got = we }));
          if Bits.width v <> w r.q then
            raise
              (Check_error
                 (Width_mismatch { where; expected = w r.q; got = Bits.width v })))
        r.reset)
    c.registers;
  (* Clock references must resolve. *)
  let clock_names = Circuit.clock_names c in
  let check_clock where name =
    if not (List.mem name clock_names) then
      raise (Check_error (Unknown_clock (where ^ ": " ^ name)))
  in
  List.iter
    (fun (r : Circuit.register) ->
      check_clock (Circuit.signal_name c r.q) r.clock)
    c.registers;
  List.iter
    (fun (m : Circuit.memory) ->
      List.iter (fun (wp : Circuit.write_port) -> check_clock m.mem_name wp.w_clock) m.writes;
      List.iter
        (fun (rp : Circuit.read_port) ->
          match rp.r_kind with
          | Circuit.Read_sync clk -> check_clock m.mem_name clk
          | Circuit.Read_comb -> ())
        m.reads)
    c.memories;
  List.iter
    (fun clk ->
      match clk with
      | Circuit.Root_clock _ -> ()
      | Circuit.Gated_clock { name; parent; enable } ->
        check_clock name parent;
        let we = check_widths_expr c ~where:name enable in
        if we <> 1 then
          raise (Check_error (Width_mismatch { where = name; expected = 1; got = we })))
    c.clocks;
  topo_assigns c
