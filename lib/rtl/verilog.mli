(** Verilog-2001 export.

    Emits synthesizable RTL for any circuit or design — including the
    generated artifacts (Debug Controller wrappers, pause buffers, SVA
    monitors), so a Zoomie-instrumented design can be taken to a real
    vendor toolchain.  Gated clocks are emitted as enable guards on the
    parent clock's always block (the glitch-free BUFGCE idiom). *)

(** Escape identifiers that collide with Verilog keywords. *)
val keyword_safe : string -> string

val of_circuit : Circuit.t -> string

(** Whole design, one module per circuit, top last. *)
val of_design : Design.t -> string

val write_file : string -> string -> unit
