(** Imperative construction API for {!Circuit} values.

    A builder accumulates signals, logic and instances; {!finish} freezes it
    into an immutable circuit.  Registers are declared first (so their output
    can appear in feedback expressions) and given their next-state function
    later with {!reg_next}. *)

type t = {
  name : string;
  mutable signals : Circuit.signal list;  (* reversed *)
  mutable next_id : int;
  mutable clocks : Circuit.clock list;
  mutable registers : Circuit.register list;
  mutable memories : Circuit.memory list;
  mutable assigns : Circuit.assign list;
  mutable instances : Circuit.instance list;
  mutable pending_next : (Expr.signal_id * string) list;
      (* registers declared but not yet given a next-state *)
}

let create name =
  {
    name;
    signals = [];
    next_id = 0;
    clocks = [];
    registers = [];
    memories = [];
    assigns = [];
    instances = [];
    pending_next = [];
  }

let add_signal t ~name ~width ~direction =
  if width <= 0 then invalid_arg "Builder: width must be positive";
  if List.exists (fun (s : Circuit.signal) -> s.name = name) t.signals then
    invalid_arg (Printf.sprintf "Builder: duplicate signal %S in %s" name t.name);
  let id = t.next_id in
  t.next_id <- id + 1;
  t.signals <- { Circuit.id; name; width; direction } :: t.signals;
  id

(** Declare an input port; returns an expression reading it. *)
let input t name width =
  Expr.Signal (add_signal t ~name ~width ~direction:(Some Circuit.Input))

(** Declare a root clock input. *)
let clock t name =
  t.clocks <- Circuit.Root_clock name :: t.clocks;
  name

(** Declare a gated clock derived from [parent]; ticks when [enable] is true
    at the parent's rising edge. *)
let gated_clock t ~name ~parent ~enable =
  t.clocks <- Circuit.Gated_clock { name; parent; enable } :: t.clocks;
  name

(** Declare an internal wire driven later via {!assign}. *)
let wire t name width =
  add_signal t ~name ~width ~direction:None

(** Drive wire [id] with [rhs]. *)
let assign t id rhs = t.assigns <- { Circuit.lhs = id; rhs } :: t.assigns

(** Declare and drive a wire in one step; returns the reading expression. *)
let wire_of t name rhs_width rhs =
  let id = wire t name rhs_width in
  assign t id rhs;
  Expr.Signal id

(** Declare an output port driven by [rhs]. *)
let output t name width rhs =
  let id = add_signal t ~name ~width ~direction:(Some Circuit.Output) in
  assign t id rhs;
  id

(** Declare an output port that will be driven by an instance output. *)
let output_signal t name width =
  add_signal t ~name ~width ~direction:(Some Circuit.Output)

(** Declare a register.  The next-state is supplied later by {!reg_next}
    (allowing feedback through the returned expression). *)
let reg t ?enable ?reset ?init ~clock name width =
  let id = add_signal t ~name ~width ~direction:None in
  let init = match init with Some b -> b | None -> Bits.zero width in
  t.registers <-
    { Circuit.q = id; clock; next = Expr.Signal id; enable; reset; init }
    :: t.registers;
  t.pending_next <- (id, name) :: t.pending_next;
  id

let reg_next t id next =
  if not (List.mem_assoc id t.pending_next) then
    invalid_arg "Builder.reg_next: register already finalized or unknown";
  t.registers <-
    List.map
      (fun (r : Circuit.register) -> if r.q = id then { r with next } else r)
      t.registers;
  t.pending_next <- List.remove_assoc id t.pending_next

(** Declare a register whose next-state is known immediately. *)
let reg_fb t ?enable ?reset ?init ~clock name width ~next =
  let id = reg t ?enable ?reset ?init ~clock name width in
  reg_next t id (next (Expr.Signal id));
  id

let memory t ?init ~name ~width ~depth ~writes ~reads () =
  (match init with
  | Some contents ->
    if Array.length contents > depth then
      invalid_arg "Builder.memory: init longer than depth";
    Array.iter
      (fun v ->
        if Bits.width v <> width then
          invalid_arg "Builder.memory: init width mismatch")
      contents
  | None -> ());
  t.memories <-
    { Circuit.mem_name = name; mem_width = width; mem_depth = depth; writes;
      reads; mem_init = init }
    :: t.memories

(** Declare a memory read-output wire of the right width. *)
let mem_read_wire t name width = add_signal t ~name ~width ~direction:None

let instantiate t ?(clock_map = []) ~inst_name ~module_name connections =
  t.instances <-
    { Circuit.inst_name; module_name; connections; clock_map } :: t.instances

let finish t : Circuit.t =
  (match t.pending_next with
  | [] -> ()
  | (_, name) :: _ ->
    invalid_arg
      (Printf.sprintf "Builder.finish: register %S in %s has no next-state" name
         t.name));
  {
    Circuit.name = t.name;
    signals = Array.of_list (List.rev t.signals);
    clocks = List.rev t.clocks;
    registers = List.rev t.registers;
    memories = List.rev t.memories;
    assigns = List.rev t.assigns;
    instances = List.rev t.instances;
  }
