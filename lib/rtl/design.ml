(** A design is a set of module definitions plus a designated top module.
    Module names are unique; instances refer to modules by name. *)

type t = {
  modules : (string, Circuit.t) Hashtbl.t;
  top : string;
}

let create ~top circuits =
  let modules = Hashtbl.create 16 in
  List.iter
    (fun (c : Circuit.t) ->
      if Hashtbl.mem modules c.name then
        invalid_arg (Printf.sprintf "Design: duplicate module %S" c.name);
      Hashtbl.add modules c.name c)
    circuits;
  if not (Hashtbl.mem modules top) then
    invalid_arg (Printf.sprintf "Design: top module %S not found" top);
  { modules; top }

let top t = Hashtbl.find t.modules t.top
let top_name t = t.top

let find t name =
  match Hashtbl.find_opt t.modules name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Design: unknown module %S" name)

let mem t name = Hashtbl.mem t.modules name

let module_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.modules []
  |> List.sort String.compare

(** Replace one module definition (the basis of incremental RTL edits:
    VTI recompiles only partitions whose module changed). *)
let replace_module t (c : Circuit.t) =
  if not (Hashtbl.mem t.modules c.name) then
    invalid_arg (Printf.sprintf "Design.replace_module: unknown module %S" c.name);
  Hashtbl.replace t.modules c.name c;
  t

let add_module t (c : Circuit.t) =
  Hashtbl.replace t.modules c.name c;
  t

(** Set a different top module (used when wrapping the design with the
    Debug Controller). *)
let with_top t top =
  if not (Hashtbl.mem t.modules top) then
    invalid_arg (Printf.sprintf "Design.with_top: unknown module %S" top);
  { t with top }

let copy t = { t with modules = Hashtbl.copy t.modules }

(** Instance tree: every (hierarchical path, module name) pair reachable
    from the top. *)
let rec instances_under t prefix module_name acc =
  let c = find t module_name in
  let acc = (prefix, module_name) :: acc in
  List.fold_left
    (fun acc (i : Circuit.instance) ->
      let path = if prefix = "" then i.inst_name else prefix ^ "." ^ i.inst_name in
      instances_under t path i.module_name acc)
    acc c.instances

let instance_tree t = List.rev (instances_under t "" t.top [])

(** Hierarchical complexity: sum of per-module complexity over all instances. *)
let total_complexity t =
  List.fold_left
    (fun acc (_, m) -> acc + Circuit.complexity (find t m))
    0 (instance_tree t)
