(** Combinational expression AST.

    Expressions reference signals of the enclosing module by integer id
    (see {!Circuit}).  Widths are fully determined by the leaves, and
    {!width_of} recomputes them; {!Check} validates that operator operand
    widths agree. *)

type signal_id = int

type t =
  | Const of Bits.t
  | Signal of signal_id
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Eq of t * t                 (** 1-bit result *)
  | Lt of t * t                 (** unsigned, 1-bit result *)
  | Mux of t * t * t            (** [Mux (sel, on_true, on_false)] *)
  | Concat of t * t             (** [Concat (hi, lo)] *)
  | Slice of t * int * int      (** [Slice (e, hi, lo)] *)
  | Shift_left of t * int
  | Shift_right of t * int
  | Reduce_or of t              (** 1-bit result *)
  | Reduce_and of t             (** 1-bit result *)
  | Reduce_xor of t             (** 1-bit result *)

(** [width_of lookup e] computes the result width of [e];
    [lookup] gives the width of a signal id. *)
let rec width_of lookup = function
  | Const b -> Bits.width b
  | Signal id -> lookup id
  | Not e -> width_of lookup e
  | And (a, _) | Or (a, _) | Xor (a, _)
  | Add (a, _) | Sub (a, _) | Mul (a, _) ->
    width_of lookup a
  | Eq _ | Lt _ | Reduce_or _ | Reduce_and _ | Reduce_xor _ -> 1
  | Mux (_, a, _) -> width_of lookup a
  | Concat (hi, lo) -> width_of lookup hi + width_of lookup lo
  | Slice (_, hi, lo) -> hi - lo + 1
  | Shift_left (e, _) | Shift_right (e, _) -> width_of lookup e

(** Fold over every signal id referenced by [e]. *)
let rec fold_signals f acc = function
  | Const _ -> acc
  | Signal id -> f acc id
  | Not e | Slice (e, _, _) | Shift_left (e, _) | Shift_right (e, _)
  | Reduce_or e | Reduce_and e | Reduce_xor e ->
    fold_signals f acc e
  | And (a, b) | Or (a, b) | Xor (a, b) | Add (a, b) | Sub (a, b)
  | Mul (a, b) | Eq (a, b) | Lt (a, b) | Concat (a, b) ->
    fold_signals f (fold_signals f acc a) b
  | Mux (s, a, b) ->
    fold_signals f (fold_signals f (fold_signals f acc s) a) b

let signals e = List.rev (fold_signals (fun acc id -> id :: acc) [] e)

(** Rewrite signal ids (used when flattening the hierarchy). *)
let rec map_signals f = function
  | Const b -> Const b
  | Signal id -> f id
  | Not e -> Not (map_signals f e)
  | And (a, b) -> And (map_signals f a, map_signals f b)
  | Or (a, b) -> Or (map_signals f a, map_signals f b)
  | Xor (a, b) -> Xor (map_signals f a, map_signals f b)
  | Add (a, b) -> Add (map_signals f a, map_signals f b)
  | Sub (a, b) -> Sub (map_signals f a, map_signals f b)
  | Mul (a, b) -> Mul (map_signals f a, map_signals f b)
  | Eq (a, b) -> Eq (map_signals f a, map_signals f b)
  | Lt (a, b) -> Lt (map_signals f a, map_signals f b)
  | Mux (s, a, b) -> Mux (map_signals f s, map_signals f a, map_signals f b)
  | Concat (a, b) -> Concat (map_signals f a, map_signals f b)
  | Slice (e, hi, lo) -> Slice (map_signals f e, hi, lo)
  | Shift_left (e, n) -> Shift_left (map_signals f e, n)
  | Shift_right (e, n) -> Shift_right (map_signals f e, n)
  | Reduce_or e -> Reduce_or (map_signals f e)
  | Reduce_and e -> Reduce_and (map_signals f e)
  | Reduce_xor e -> Reduce_xor (map_signals f e)

(** Count of primitive operator nodes, used by compile-cost models. *)
let rec node_count = function
  | Const _ | Signal _ -> 0
  | Not e | Slice (e, _, _) | Shift_left (e, _) | Shift_right (e, _)
  | Reduce_or e | Reduce_and e | Reduce_xor e ->
    1 + node_count e
  | And (a, b) | Or (a, b) | Xor (a, b) | Add (a, b) | Sub (a, b)
  | Mul (a, b) | Eq (a, b) | Lt (a, b) | Concat (a, b) ->
    1 + node_count a + node_count b
  | Mux (s, a, b) -> 1 + node_count s + node_count a + node_count b

(** Evaluate [e] with [read] supplying signal values. *)
let rec eval read e =
  match e with
  | Const b -> b
  | Signal id -> read id
  | Not e -> Bits.lognot (eval read e)
  | And (a, b) -> Bits.logand (eval read a) (eval read b)
  | Or (a, b) -> Bits.logor (eval read a) (eval read b)
  | Xor (a, b) -> Bits.logxor (eval read a) (eval read b)
  | Add (a, b) -> Bits.add (eval read a) (eval read b)
  | Sub (a, b) -> Bits.sub (eval read a) (eval read b)
  | Mul (a, b) -> Bits.mul (eval read a) (eval read b)
  | Eq (a, b) ->
    Bits.of_int ~width:1 (if Bits.equal (eval read a) (eval read b) then 1 else 0)
  | Lt (a, b) ->
    Bits.of_int ~width:1 (if Bits.lt_u (eval read a) (eval read b) then 1 else 0)
  | Mux (s, a, b) ->
    if Bits.reduce_or (eval read s) then eval read a else eval read b
  | Concat (hi, lo) -> Bits.concat (eval read hi) (eval read lo)
  | Slice (e, hi, lo) -> Bits.slice (eval read e) ~hi ~lo
  | Shift_left (e, n) -> Bits.shift_left (eval read e) n
  | Shift_right (e, n) -> Bits.shift_right (eval read e) n
  | Reduce_or e -> Bits.of_int ~width:1 (if Bits.reduce_or (eval read e) then 1 else 0)
  | Reduce_and e -> Bits.of_int ~width:1 (if Bits.reduce_and (eval read e) then 1 else 0)
  | Reduce_xor e -> Bits.of_int ~width:1 (if Bits.reduce_xor (eval read e) then 1 else 0)

(* Convenience constructors used heavily by design generators. *)

let const_int ~width v = Const (Bits.of_int ~width v)
let vdd = Const (Bits.of_int ~width:1 1)
let gnd = Const (Bits.of_int ~width:1 0)
let ( &: ) a b = And (a, b)
let ( |: ) a b = Or (a, b)
let ( ^: ) a b = Xor (a, b)
let ( ~: ) a = Not a
let ( +: ) a b = Add (a, b)
let ( -: ) a b = Sub (a, b)
let ( ==: ) a b = Eq (a, b)
let ( <>: ) a b = Not (Eq (a, b))
let ( <: ) a b = Lt (a, b)
let mux s a b = Mux (s, a, b)
let bit e i = Slice (e, i, i)

(* Balanced reduction trees: unlike a linear fold, these keep logic depth
   logarithmic, which matters once designs chain hundreds of terms. *)
let rec tree_reduce f = function
  | [] -> invalid_arg "Expr.tree_reduce: empty"
  | [ x ] -> x
  | l ->
    let rec split acc n = function
      | rest when n = 0 -> (List.rev acc, rest)
      | x :: rest -> split (x :: acc) (n - 1) rest
      | [] -> (List.rev acc, [])
    in
    let half = List.length l / 2 in
    let a, b = split [] half l in
    f (tree_reduce f a) (tree_reduce f b)

let tree_and = function [] -> vdd | l -> tree_reduce (fun a b -> And (a, b)) l
let tree_or = function [] -> gnd | l -> tree_reduce (fun a b -> Or (a, b)) l
