(** RTL expressions: pure combinational terms over signals.

    Word-level and width-polymorphic — widths are checked by
    {!Check.check_widths_expr} against the owning circuit, not carried in
    the term.  The [( &: )]-style operators make builder code read like
    HDL; [tree_and]/[tree_or] build balanced (log-depth) reductions that
    synthesis keeps shallow. *)

type signal_id = int

type t =
  | Const of Bits.t
  | Signal of signal_id
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Eq of t * t  (** 1-bit result *)
  | Lt of t * t  (** unsigned; 1-bit result *)
  | Mux of t * t * t  (** select (1 bit), then, else *)
  | Concat of t * t  (** high part first *)
  | Slice of t * int * int  (** hi, lo (inclusive) *)
  | Shift_left of t * int
  | Shift_right of t * int
  | Reduce_or of t
  | Reduce_and of t
  | Reduce_xor of t

(** Width of a term given signal widths. *)
val width_of : (signal_id -> int) -> t -> int

val fold_signals : ('a -> signal_id -> 'a) -> 'a -> t -> 'a

(** Signals read by a term (with duplicates). *)
val signals : t -> signal_id list

(** Substitute signals by terms. *)
val map_signals : (signal_id -> t) -> t -> t

val node_count : t -> int

(** Evaluate against an environment (the simulator's inner loop). *)
val eval : (signal_id -> Bits.t) -> t -> Bits.t

(** {1 HDL-flavored constructors} *)

val const_int : width:int -> int -> t

val vdd : t

val gnd : t

val ( &: ) : t -> t -> t

val ( |: ) : t -> t -> t

val ( ^: ) : t -> t -> t

val ( ~: ) : t -> t

val ( +: ) : t -> t -> t

val ( -: ) : t -> t -> t

val ( ==: ) : t -> t -> t

val ( <>: ) : t -> t -> t

val ( <: ) : t -> t -> t

val mux : t -> t -> t -> t

(** Single-bit slice. *)
val bit : t -> int -> t

val tree_reduce : ('a -> 'a -> 'a) -> 'a list -> 'a

(** Balanced conjunction; [vdd] on the empty list. *)
val tree_and : t list -> t

(** Balanced disjunction; [gnd] on the empty list. *)
val tree_or : t list -> t
