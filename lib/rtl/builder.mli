(** Imperative module builder: the HDL-authoring surface.

    Declare ports, clocks, wires, registers, memories and instances in
    any order; {!finish} checks that every forward-declared register got
    its next-state and freezes the {!Circuit.t}.  Registers come in three
    styles: declare-then-[reg_next] (for cyclic dependencies), [reg_fb]
    (self-feedback in one call), and plain [reg]. *)

open Expr

type t

val create : string -> t

(** {1 Ports and clocks} *)

(** Declare an input port; returns it as an expression. *)
val input : t -> string -> int -> Expr.t

(** Declare a root clock (returns its name). *)
val clock : t -> string -> string

(** Declare a clock gated off [parent] by [enable] — glitch-free BUFGCE
    semantics; the Debug Controller's pause mechanism. *)
val gated_clock : t -> name:string -> parent:string -> enable:Expr.t -> string

(** Declare an output port driven by an expression; returns its id. *)
val output : t -> string -> int -> Expr.t -> signal_id

(** Declare an output port to be driven later (via {!assign}). *)
val output_signal : t -> string -> int -> signal_id

(** {1 Wires} *)

(** Declare an undriven wire (drive it with {!assign} or an instance). *)
val wire : t -> string -> int -> signal_id

val assign : t -> signal_id -> Expr.t -> unit

(** Declare and drive a wire in one step; returns it as an expression. *)
val wire_of : t -> string -> int -> Expr.t -> Expr.t

(** {1 Registers} *)

(** Declare a register; its next-state must follow via {!reg_next}
    (checked at {!finish}). *)
val reg :
  t ->
  ?enable:Expr.t ->
  ?reset:Expr.t * Bits.t ->
  ?init:Bits.t ->
  clock:string ->
  string ->
  int ->
  signal_id

(** Supply the next-state of a declared register. *)
val reg_next : t -> signal_id -> Expr.t -> unit

(** Register with self-feedback: [next] receives the register's own
    current value. *)
val reg_fb :
  t ->
  ?enable:Expr.t ->
  ?reset:Expr.t * Bits.t ->
  ?init:Bits.t ->
  clock:string ->
  string ->
  int ->
  next:(Expr.t -> Expr.t) ->
  signal_id

(** {1 Memories and instances} *)

(** Declare a memory with its ports; read outputs are wires created with
    {!mem_read_wire}. *)
val memory :
  t ->
  ?init:Bits.t array ->
  name:string ->
  width:int ->
  depth:int ->
  writes:Circuit.write_port list ->
  reads:Circuit.read_port list ->
  unit ->
  unit

(** Declare the wire a memory read port drives. *)
val mem_read_wire : t -> string -> int -> signal_id

(** Instantiate another module.  [clock_map] binds the child's clocks to
    this module's (defaults to same-name). *)
val instantiate :
  t ->
  ?clock_map:(string * string) list ->
  inst_name:string ->
  module_name:string ->
  Circuit.connection list ->
  unit

(** Freeze into a circuit.  @raise Invalid_argument if a declared
    register never received a next-state. *)
val finish : t -> Circuit.t
