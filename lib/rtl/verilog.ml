(** Verilog-2001 emission: export circuits and designs as synthesizable
    Verilog, so Zoomie-generated hardware (Debug Controller wrappers, pause
    buffers, assertion monitors) can be dropped into an external flow or
    inspected by hand.

    Gated clocks are emitted as [BUFGCE]-style clock-enable idioms: the
    register processes of a gated domain are clocked by the parent and
    guarded by the enable, which is the semantics our simulator implements
    and what a vendor tool infers onto its clock buffers. *)

let keyword_safe name =
  (* Hierarchical names carry '.' and ':' after elaboration. *)
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | '.' | ':' | '/' -> Buffer.add_char buf '_'
      | c -> Buffer.add_char buf c)
    name;
  let s = Buffer.contents buf in
  match s with
  | "module" | "input" | "output" | "wire" | "reg" | "assign" | "always"
  | "begin" | "end" | "if" | "else" | "case" | "endcase" | "endmodule"
  | "parameter" | "signed" | "integer" ->
    s ^ "_"
  | _ -> s

let width_decl w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let rec expr_to_string c (e : Expr.t) =
  let s = expr_to_string c in
  let name id = keyword_safe (Circuit.signal_name c id) in
  match e with
  | Expr.Const b ->
    Printf.sprintf "%d'h%s" (Bits.width b) (Bits.to_hex_string b)
  | Expr.Signal id -> name id
  | Expr.Not a -> Printf.sprintf "(~%s)" (s a)
  | Expr.And (a, b) -> Printf.sprintf "(%s & %s)" (s a) (s b)
  | Expr.Or (a, b) -> Printf.sprintf "(%s | %s)" (s a) (s b)
  | Expr.Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (s a) (s b)
  | Expr.Add (a, b) -> Printf.sprintf "(%s + %s)" (s a) (s b)
  | Expr.Sub (a, b) -> Printf.sprintf "(%s - %s)" (s a) (s b)
  | Expr.Mul (a, b) -> Printf.sprintf "(%s * %s)" (s a) (s b)
  | Expr.Eq (a, b) -> Printf.sprintf "(%s == %s)" (s a) (s b)
  | Expr.Lt (a, b) -> Printf.sprintf "(%s < %s)" (s a) (s b)
  | Expr.Mux (sel, a, b) -> Printf.sprintf "(%s ? %s : %s)" (s sel) (s a) (s b)
  | Expr.Concat (hi, lo) -> Printf.sprintf "{%s, %s}" (s hi) (s lo)
  | Expr.Slice (a, hi, lo) ->
    if hi = lo then Printf.sprintf "%s[%d]" (s a) hi
    else Printf.sprintf "%s[%d:%d]" (s a) hi lo
  | Expr.Shift_left (a, n) -> Printf.sprintf "(%s << %d)" (s a) n
  | Expr.Shift_right (a, n) -> Printf.sprintf "(%s >> %d)" (s a) n
  | Expr.Reduce_or a -> Printf.sprintf "(|%s)" (s a)
  | Expr.Reduce_and a -> Printf.sprintf "(&%s)" (s a)
  | Expr.Reduce_xor a -> Printf.sprintf "(^%s)" (s a)

(* Clock expression and enable guard for a (possibly gated) clock name. *)
let rec clock_of c name =
  let entry =
    List.find_opt
      (fun clk ->
        match clk with
        | Circuit.Root_clock n -> n = name
        | Circuit.Gated_clock { name = n; _ } -> n = name)
      c.Circuit.clocks
  in
  match entry with
  | Some (Circuit.Gated_clock { parent; enable; _ }) ->
    let root, guards = clock_of c parent in
    (root, expr_to_string c enable :: guards)
  | Some (Circuit.Root_clock n) -> (n, [])
  | None -> (name, [])

(** Emit one circuit as a Verilog module. *)
let of_circuit (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let inputs = Circuit.inputs c and outputs = Circuit.outputs c in
  let root_clocks =
    List.filter_map
      (function Circuit.Root_clock n -> Some n | Circuit.Gated_clock _ -> None)
      c.Circuit.clocks
  in
  let ports =
    List.map keyword_safe root_clocks
    @ List.map (fun (s : Circuit.signal) -> keyword_safe s.name) inputs
    @ List.map (fun (s : Circuit.signal) -> keyword_safe s.name) outputs
  in
  pr "module %s (\n  %s\n);\n" (keyword_safe c.Circuit.name)
    (String.concat ",\n  " ports);
  List.iter (fun n -> pr "  input wire %s;\n" (keyword_safe n)) root_clocks;
  List.iter
    (fun (s : Circuit.signal) ->
      pr "  input wire %s%s;\n" (width_decl s.width) (keyword_safe s.name))
    inputs;
  List.iter
    (fun (s : Circuit.signal) ->
      pr "  output wire %s%s;\n" (width_decl s.width) (keyword_safe s.name))
    outputs;
  (* Internal declarations. *)
  let is_reg id =
    List.exists (fun (r : Circuit.register) -> r.q = id) c.Circuit.registers
  in
  Array.iter
    (fun (s : Circuit.signal) ->
      if s.direction = None then
        pr "  %s %s%s;\n"
          (if is_reg s.id then "reg" else "wire")
          (width_decl s.width) (keyword_safe s.name))
    c.Circuit.signals;
  (* Memories. *)
  List.iter
    (fun (m : Circuit.memory) ->
      pr "  reg %s%s [0:%d];\n" (width_decl m.mem_width)
        (keyword_safe m.mem_name) (m.mem_depth - 1);
      (match m.mem_init with
      | None -> ()
      | Some init ->
        pr "  initial begin\n";
        Array.iteri
          (fun i v ->
            pr "    %s[%d] = %d'h%s;\n" (keyword_safe m.mem_name) i
              (Bits.width v) (Bits.to_hex_string v))
          init;
        pr "  end\n"))
    c.Circuit.memories;
  (* Combinational assigns. *)
  List.iter
    (fun (a : Circuit.assign) ->
      pr "  assign %s = %s;\n"
        (keyword_safe (Circuit.signal_name c a.lhs))
        (expr_to_string c a.rhs))
    c.Circuit.assigns;
  (* Memory read ports. *)
  List.iter
    (fun (m : Circuit.memory) ->
      List.iter
        (fun (rp : Circuit.read_port) ->
          match rp.r_kind with
          | Circuit.Read_comb ->
            pr "  assign %s = %s[%s];\n"
              (keyword_safe (Circuit.signal_name c rp.r_out))
              (keyword_safe m.mem_name)
              (expr_to_string c rp.r_addr)
          | Circuit.Read_sync clk ->
            let root, guards = clock_of c clk in
            pr "  always @(posedge %s) begin\n" (keyword_safe root);
            let indent = ref "    " in
            List.iter
              (fun g ->
                pr "%sif (%s) begin\n" !indent g;
                indent := !indent ^ "  ")
              guards;
            pr "%s%s <= %s[%s];\n" !indent
              (keyword_safe (Circuit.signal_name c rp.r_out))
              (keyword_safe m.mem_name)
              (expr_to_string c rp.r_addr);
            List.iter (fun _ -> pr "    end\n") guards;
            pr "  end\n")
        m.reads;
      List.iter
        (fun (wp : Circuit.write_port) ->
          let root, guards = clock_of c wp.w_clock in
          pr "  always @(posedge %s) begin\n" (keyword_safe root);
          let guards = guards @ [ expr_to_string c wp.w_enable ] in
          let indent = ref "    " in
          List.iter
            (fun g ->
              pr "%sif (%s) begin\n" !indent g;
              indent := !indent ^ "  ")
            guards;
          pr "%s%s[%s] <= %s;\n" !indent (keyword_safe m.mem_name)
            (expr_to_string c wp.w_addr)
            (expr_to_string c wp.w_data);
          List.iter (fun _ -> pr "    end\n") guards;
          pr "  end\n")
        m.writes)
    c.Circuit.memories;
  (* Registers: sync reset > clock enable > next. *)
  List.iter
    (fun (r : Circuit.register) ->
      let root, guards = clock_of c r.clock in
      let q = keyword_safe (Circuit.signal_name c r.q) in
      pr "  always @(posedge %s) begin\n" (keyword_safe root);
      let indent = ref "    " in
      List.iter
        (fun g ->
          pr "%sif (%s) begin\n" !indent g;
          indent := !indent ^ "  ")
        guards;
      let body_indent = !indent in
      (match (r.reset, r.enable) with
      | Some (rst, v), en ->
        pr "%sif (%s) %s <= %d'h%s;\n" body_indent (expr_to_string c rst) q
          (Bits.width v) (Bits.to_hex_string v);
        (match en with
        | Some e ->
          pr "%selse if (%s) %s <= %s;\n" body_indent (expr_to_string c e) q
            (expr_to_string c r.next)
        | None ->
          pr "%selse %s <= %s;\n" body_indent q (expr_to_string c r.next))
      | None, Some e ->
        pr "%sif (%s) %s <= %s;\n" body_indent (expr_to_string c e) q
          (expr_to_string c r.next)
      | None, None -> pr "%s%s <= %s;\n" body_indent q (expr_to_string c r.next));
      List.iter (fun _ -> pr "    end\n") guards;
      pr "  end\n")
    c.Circuit.registers;
  (* Instances. *)
  List.iter
    (fun (i : Circuit.instance) ->
      pr "  %s %s (\n" (keyword_safe i.module_name) (keyword_safe i.inst_name);
      let conns =
        List.map
          (fun conn ->
            match conn with
            | Circuit.Drive_input (port, e) ->
              Printf.sprintf "    .%s(%s)" (keyword_safe port) (expr_to_string c e)
            | Circuit.Read_output (port, sig_id) ->
              Printf.sprintf "    .%s(%s)" (keyword_safe port)
                (keyword_safe (Circuit.signal_name c sig_id)))
          i.connections
      in
      (* Clock connections by map (or same-name). *)
      let clocks =
        List.map
          (fun (child, parent) ->
            Printf.sprintf "    .%s(%s)" (keyword_safe child) (keyword_safe parent))
          i.clock_map
      in
      pr "%s\n  );\n" (String.concat ",\n" (clocks @ conns)))
    c.Circuit.instances;
  pr "endmodule\n";
  Buffer.contents buf

(** Emit a whole design, one module per definition, top last. *)
let of_design (d : Design.t) =
  let names = Design.module_names d in
  let top = Design.top_name d in
  let others = List.filter (fun n -> n <> top) names in
  String.concat "\n"
    (List.map (fun n -> of_circuit (Design.find d n)) (others @ [ top ]))

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
