(** A single RTL module definition: ports, signals, combinational assigns,
    registers, memories, derived (gated) clocks and child instances.

    Circuits are built through {!Builder} and composed into a {!Design};
    {!Flat} elaborates a design into a single flat circuit for simulation,
    synthesis and checking. *)

type direction = Input | Output

type signal = {
  id : Expr.signal_id;
  name : string;
  width : int;
  direction : direction option;  (** [None] for internal wires *)
}

(** Clocks: roots are module inputs driven by the environment; gated clocks
    tick only when their enable expression (evaluated in the parent domain)
    is true at the parent's edge.  Gated clocks are the hardware basis of
    Zoomie's pause mechanism (§3.1/§4.2). *)
type clock =
  | Root_clock of string
  | Gated_clock of { name : string; parent : string; enable : Expr.t }

type register = {
  q : Expr.signal_id;             (** output signal holding the state *)
  clock : string;
  next : Expr.t;
  enable : Expr.t option;         (** clock-enable, [None] = always *)
  reset : (Expr.t * Bits.t) option;  (** synchronous reset and reset value *)
  init : Bits.t;                  (** power-on / GSR value *)
}

type write_port = {
  w_clock : string;
  w_enable : Expr.t;
  w_addr : Expr.t;
  w_data : Expr.t;
}

(** Combinational (LUTRAM-style) or registered (BRAM-style) read. *)
type read_kind = Read_comb | Read_sync of string (* clock *)

type read_port = {
  r_addr : Expr.t;
  r_out : Expr.signal_id;
  r_kind : read_kind;
}

type memory = {
  mem_name : string;
  mem_width : int;
  mem_depth : int;
  writes : write_port list;
  reads : read_port list;
  mem_init : Bits.t array option;  (** power-on contents (ROMs, init data) *)
}

type assign = { lhs : Expr.signal_id; rhs : Expr.t }

(** Port connections of a child instance: inputs are driven by parent
    expressions; outputs drive parent signals. *)
type connection =
  | Drive_input of string * Expr.t          (** child input port name, parent expr *)
  | Read_output of string * Expr.signal_id  (** child output port name, parent signal *)

type instance = {
  inst_name : string;
  module_name : string;
  connections : connection list;
  clock_map : (string * string) list;
      (** child clock name -> parent clock name; unlisted clocks connect to
          the parent clock of the same name *)
}

type t = {
  name : string;
  signals : signal array;
  clocks : clock list;
  registers : register list;
  memories : memory list;
  assigns : assign list;
  instances : instance list;
}

let signal t id = t.signals.(id)
let signal_width t id = t.signals.(id).width
let signal_name t id = t.signals.(id).name

let find_signal t name =
  let found = ref None in
  Array.iter (fun (s : signal) -> if s.name = name then found := Some s) t.signals;
  match !found with
  | Some s -> s
  | None -> raise Not_found

let inputs t =
  Array.to_list t.signals
  |> List.filter (fun s -> s.direction = Some Input)

let outputs t =
  Array.to_list t.signals
  |> List.filter (fun s -> s.direction = Some Output)

let clock_names t =
  List.map
    (function Root_clock n -> n | Gated_clock { name; _ } -> name)
    t.clocks

let is_root_clock t name =
  List.exists (function Root_clock n -> n = name | Gated_clock _ -> false) t.clocks

(** Rough gate-count proxy: expression nodes + state bits.  Feeds the
    toolchain cost models before real synthesis numbers exist. *)
let complexity t =
  let expr_nodes =
    List.fold_left (fun acc a -> acc + 1 + Expr.node_count a.rhs) 0 t.assigns
  in
  let reg_bits =
    List.fold_left
      (fun acc r -> acc + (signal_width t r.q) + Expr.node_count r.next)
      0 t.registers
  in
  let mem_bits =
    List.fold_left (fun acc m -> acc + (m.mem_width * m.mem_depth / 64)) 0 t.memories
  in
  expr_nodes + reg_bits + mem_bits
