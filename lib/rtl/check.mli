(** Structural validation of circuits: the linter every flow runs before
    trusting a netlist.

    Checks expression widths, single-driver discipline, driverless wires,
    clock references, and combinational cycles (via a topological sort of
    the assign graph that doubles as the simulator's evaluation order). *)

type error =
  | Width_mismatch of { where : string; expected : int; got : int }
  | Multiple_drivers of string
  | No_driver of string
  | Combinational_cycle of string list  (** the offending signal cycle *)
  | Unknown_clock of string

val pp_error : Format.formatter -> error -> unit

exception Check_error of error

val error_to_string : error -> string

(** Width of an expression in a circuit's context.
    @raise Check_error on an internal width mismatch. *)
val check_widths_expr : Circuit.t -> where:string -> Expr.t -> int

(** Validate a circuit and return its assigns in dependency order.
    @raise Check_error on the first violation. *)
val validate : Circuit.t -> Circuit.assign array

(** Dependency-ordered assigns (also used by the simulator).
    @raise Check_error on a combinational cycle. *)
val topo_assigns : Circuit.t -> Circuit.assign array
