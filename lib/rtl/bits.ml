(** Arbitrary-width bit vectors.

    Values are stored little-endian in 32-bit limbs packed into OCaml [int]s.
    All operations are unsigned; widths are explicit and results are always
    truncated to the declared width.  This is the value domain shared by the
    RTL IR ({!Expr}), the simulator, the synthesized netlists and the
    configuration-frame machinery. *)

type t = { width : int; limbs : int array }

let limb_bits = 32
let limb_mask = 0xFFFFFFFF

let num_limbs width = (width + limb_bits - 1) / limb_bits

(* Mask applied to the top limb so unused high bits stay zero. *)
let top_mask width =
  let rem = width mod limb_bits in
  if rem = 0 then limb_mask else (1 lsl rem) - 1

let normalize t =
  let n = Array.length t.limbs in
  if n > 0 then t.limbs.(n - 1) <- t.limbs.(n - 1) land top_mask t.width;
  t

(** [zero w] is the all-zeros vector of width [w]. *)
let zero width =
  if width <= 0 then invalid_arg "Bits.zero: width must be positive";
  { width; limbs = Array.make (num_limbs width) 0 }

(** [ones w] is the all-ones vector of width [w]. *)
let ones width =
  let t = { width; limbs = Array.make (num_limbs width) limb_mask } in
  normalize t

let width t = t.width

let copy t = { t with limbs = Array.copy t.limbs }

(** [of_int ~width v] truncates the non-negative integer [v] to [width] bits. *)
let of_int ~width v =
  if v < 0 then invalid_arg "Bits.of_int: negative value";
  let t = zero width in
  let rec fill i v =
    if v <> 0 && i < Array.length t.limbs then begin
      t.limbs.(i) <- v land limb_mask;
      fill (i + 1) (v lsr limb_bits)
    end
  in
  fill 0 v;
  normalize t

(** [to_int t] interprets [t] as an unsigned integer.
    Raises [Invalid_argument] when the value does not fit in an OCaml int. *)
let to_int t =
  let acc = ref 0 in
  for i = Array.length t.limbs - 1 downto 0 do
    if i >= 2 && t.limbs.(i) <> 0 then
      invalid_arg "Bits.to_int: value too wide";
    if i < 2 then acc := (!acc lsl limb_bits) lor t.limbs.(i)
  done;
  if !acc < 0 then invalid_arg "Bits.to_int: value too wide";
  !acc

let get t i =
  if i < 0 || i >= t.width then invalid_arg "Bits.get: index out of range";
  (t.limbs.(i / limb_bits) lsr (i mod limb_bits)) land 1 = 1

let set t i b =
  if i < 0 || i >= t.width then invalid_arg "Bits.set: index out of range";
  let li = i / limb_bits and off = i mod limb_bits in
  let t = copy t in
  if b then t.limbs.(li) <- t.limbs.(li) lor (1 lsl off)
  else t.limbs.(li) <- t.limbs.(li) land lnot (1 lsl off);
  t

(** In-place bit update; reserved for hot paths (simulator state commit). *)
let set_inplace t i b =
  let li = i / limb_bits and off = i mod limb_bits in
  if b then t.limbs.(li) <- t.limbs.(li) lor (1 lsl off)
  else t.limbs.(li) <- t.limbs.(li) land lnot (1 lsl off)

let equal a b =
  a.width = b.width && Array.for_all2 ( = ) a.limbs b.limbs

let is_zero t = Array.for_all (fun l -> l = 0) t.limbs

let map2 f a b =
  if a.width <> b.width then invalid_arg "Bits: width mismatch";
  let limbs = Array.map2 f a.limbs b.limbs in
  normalize { width = a.width; limbs }

let logand a b = map2 ( land ) a b
let logor a b = map2 ( lor ) a b
let logxor a b = map2 ( lxor ) a b

let lognot a =
  normalize { a with limbs = Array.map (fun l -> lnot l land limb_mask) a.limbs }

(** Reduction OR: true when any bit is set. *)
let reduce_or t = not (is_zero t)

(** Reduction AND: true when every bit is set. *)
let reduce_and t = equal t (ones t.width)

let reduce_xor t =
  let parity = ref 0 in
  for i = 0 to Array.length t.limbs - 1 do
    let l = ref t.limbs.(i) in
    while !l <> 0 do
      parity := !parity lxor (!l land 1);
      l := !l lsr 1
    done
  done;
  !parity = 1

let add a b =
  if a.width <> b.width then invalid_arg "Bits.add: width mismatch";
  let r = zero a.width in
  let carry = ref 0 in
  for i = 0 to Array.length r.limbs - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    r.limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub a b =
  if a.width <> b.width then invalid_arg "Bits.sub: width mismatch";
  let r = zero a.width in
  let borrow = ref 0 in
  for i = 0 to Array.length r.limbs - 1 do
    let s = a.limbs.(i) - b.limbs.(i) - !borrow in
    if s < 0 then begin
      r.limbs.(i) <- (s + (1 lsl limb_bits)) land limb_mask;
      borrow := 1
    end else begin
      r.limbs.(i) <- s land limb_mask;
      borrow := 0
    end
  done;
  normalize r

(** Multiplication truncated to the width of the operands. *)
let mul a b =
  if a.width <> b.width then invalid_arg "Bits.mul: width mismatch";
  let n = Array.length a.limbs in
  let r = zero a.width in
  (* 16-bit half-limb schoolbook to stay within the 63-bit int range. *)
  let halves t =
    Array.init (2 * n) (fun i ->
        let l = t.limbs.(i / 2) in
        if i mod 2 = 0 then l land 0xFFFF else (l lsr 16) land 0xFFFF)
  in
  let ha = halves a and hb = halves b in
  let hr = Array.make (2 * n) 0 in
  for i = 0 to (2 * n) - 1 do
    if ha.(i) <> 0 then
      for j = 0 to (2 * n) - 1 - i do
        let k = i + j in
        hr.(k) <- hr.(k) + (ha.(i) * hb.(j))
      done
  done;
  let carry = ref 0 in
  for k = 0 to (2 * n) - 1 do
    let v = hr.(k) + !carry in
    hr.(k) <- v land 0xFFFF;
    carry := v lsr 16
  done;
  for i = 0 to n - 1 do
    r.limbs.(i) <- hr.(2 * i) lor (hr.((2 * i) + 1) lsl 16)
  done;
  normalize r

(** Unsigned comparison: negative, zero or positive as [a] is below,
    equal to or above [b]. *)
let compare_u a b =
  if a.width <> b.width then invalid_arg "Bits.compare_u: width mismatch";
  let rec go i =
    if i < 0 then 0
    else if a.limbs.(i) < b.limbs.(i) then -1
    else if a.limbs.(i) > b.limbs.(i) then 1
    else go (i - 1)
  in
  go (Array.length a.limbs - 1)

let lt_u a b = compare_u a b < 0

(** [slice t ~hi ~lo] extracts bits [hi..lo] inclusive ([hi >= lo]). *)
let slice t ~hi ~lo =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg "Bits.slice: bad range";
  let w = hi - lo + 1 in
  let r = zero w in
  for i = 0 to w - 1 do
    if get t (lo + i) then set_inplace r i true
  done;
  normalize r

(** [concat hi lo] places [hi] in the upper bits above [lo]. *)
let concat hi lo =
  let w = hi.width + lo.width in
  let r = zero w in
  for i = 0 to lo.width - 1 do
    if get lo i then set_inplace r i true
  done;
  for i = 0 to hi.width - 1 do
    if get hi i then set_inplace r (lo.width + i) true
  done;
  r

let concat_list = function
  | [] -> invalid_arg "Bits.concat_list: empty"
  | hd :: tl -> List.fold_left (fun acc b -> concat acc b) hd tl

let shift_left t n =
  if n < 0 then invalid_arg "Bits.shift_left";
  let r = zero t.width in
  for i = 0 to t.width - 1 - n do
    if get t i then set_inplace r (i + n) true
  done;
  r

let shift_right t n =
  if n < 0 then invalid_arg "Bits.shift_right";
  let r = zero t.width in
  for i = n to t.width - 1 do
    if get t i then set_inplace r (i - n) true
  done;
  r

(** Zero-extend or truncate to [width]. *)
let resize t width =
  if width = t.width then t
  else begin
    let r = zero width in
    let n = min width t.width in
    for i = 0 to n - 1 do
      if get t i then set_inplace r i true
    done;
    r
  end

(** Uniformly random value of the given width (for property tests). *)
let random ~width st =
  let r = zero width in
  for i = 0 to Array.length r.limbs - 1 do
    (* Random.State.int is limited to 2^30; compose two 16-bit halves. *)
    r.limbs.(i) <-
      Random.State.int st 65536 lor (Random.State.int st 65536 lsl 16)
  done;
  normalize r

let to_binary_string t =
  String.init t.width (fun i -> if get t (t.width - 1 - i) then '1' else '0')

let of_binary_string s =
  let width = String.length s in
  if width = 0 then invalid_arg "Bits.of_binary_string: empty";
  let r = zero width in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> set_inplace r (width - 1 - i) true
      | '0' -> ()
      | _ -> invalid_arg "Bits.of_binary_string: bad char")
    s;
  r

let to_hex_string t =
  let nibbles = (t.width + 3) / 4 in
  String.init nibbles (fun i ->
      let nib = nibbles - 1 - i in
      let v = ref 0 in
      for b = 0 to 3 do
        let idx = (nib * 4) + b in
        if idx < t.width && get t idx then v := !v lor (1 lsl b)
      done;
      "0123456789abcdef".[!v])

let pp fmt t = Fmt.pf fmt "%d'h%s" t.width (to_hex_string t)

let to_string t = Fmt.str "%a" pp t
