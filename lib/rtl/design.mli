(** A design: a set of named modules and a top.

    Modules reference each other by name through
    {!Circuit.instantiate}-created instances; {!Flat} elaborates the tree
    into one flat circuit (or a shell with blackboxed units for
    hierarchical synthesis).  Values are immutable from the caller's view
    — rewriting passes ({!Zoomie_debug.Controller.wrap}, ILA insertion)
    return new designs. *)

type t = { modules : (string, Circuit.t) Hashtbl.t; top : string }

(** @raise Invalid_argument on duplicate module names or a missing top. *)
val create : top:string -> Circuit.t list -> t

val top : t -> Circuit.t

val top_name : t -> string

(** @raise Not_found for an unknown module. *)
val find : t -> string -> Circuit.t

val mem : t -> string -> bool

val module_names : t -> string list

(** Functional update: a copy with one module replaced. *)
val replace_module : t -> Circuit.t -> t

(** Functional update: a copy with one module added. *)
val add_module : t -> Circuit.t -> t

val with_top : t -> string -> t

val copy : t -> t

(** Every instance of module [name]: [(hierarchical path, module)]. *)
val instances_under :
  t -> string -> string -> (string * string) list -> (string * string) list

(** All instances in the design, depth-first from the top. *)
val instance_tree : t -> (string * string) list

(** Rough size metric over all modules (signals + assigns + registers). *)
val total_complexity : t -> int
