(** Elaboration: flatten a module tree into one circuit.

    Instances are inlined with dot-separated name prefixes
    ([cluster0.core0.pc]); formal clocks resolve through each instance's
    clock environment to root clocks (gated clocks keep their gating
    chain).  {!elaborate_shell} is the hierarchical-synthesis variant:
    instances of the listed unit modules are {e not} inlined — each
    becomes a {!blackbox} record and its ports become boundary signals
    (named ["path:port"]) for {!Zoomie_synth.Link} to unify later. *)

(** A unit instance left out of the shell. *)
type blackbox = {
  bb_path : string;  (** hierarchical instance path *)
  bb_module : string;
  bb_clock_env : (string * string) list;  (** formal clock -> root clock *)
}

(** Inline everything.  @raise Check_error on structural violations. *)
val elaborate : Design.t -> Circuit.t

(** Inline everything except instances of [units]. *)
val elaborate_shell : Design.t -> units:string list -> Circuit.t * blackbox list
