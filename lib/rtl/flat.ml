(** Elaboration: inline the instance hierarchy of a {!Design} into a single
    flat {!Circuit} with dotted hierarchical names.

    Only the top module's ports remain ports; all child ports become wires
    connected by generated assigns.  Clock connections are resolved through
    each instance's [clock_map] (defaulting to connect-by-name), so a gated
    clock created by the Debug Controller wrapper transparently drives the
    registers of the wrapped module tree. *)

(** A blackboxed instance encountered during elaboration: its ports became
    shell IOs named [path ^ ":" ^ port]; [bb_clock_env] maps its module-level
    clock names to flat clock names (for stamping a separately synthesized
    netlist into place). *)
type blackbox = {
  bb_path : string;
  bb_module : string;
  bb_clock_env : (string * string) list;
}

type accum = {
  mutable signals : Circuit.signal list;  (* reversed *)
  mutable next_id : int;
  mutable clocks : Circuit.clock list;    (* reversed *)
  mutable registers : Circuit.register list;
  mutable memories : Circuit.memory list;
  mutable assigns : Circuit.assign list;
  mutable root_clocks_seen : (string, unit) Hashtbl.t;
  mutable blackboxes : blackbox list;
  units : (string, unit) Hashtbl.t;  (* module names to blackbox *)
}

let fresh_signal acc ~name ~width ~direction =
  let id = acc.next_id in
  acc.next_id <- id + 1;
  acc.signals <- { Circuit.id; name; width; direction } :: acc.signals;
  id

let prefixed prefix name = if prefix = "" then name else prefix ^ "." ^ name

(* Inline [module_name] at [prefix].  [clock_env] maps the module's root
   clock names to flat clock names.  Returns the child signal-id ->
   flat-id map so the caller can wire up port connections. *)
let rec inline design acc ~prefix ~module_name ~clock_env ~top =
  let c = Design.find design module_name in
  let n = Array.length c.Circuit.signals in
  let sig_map = Array.make n (-1) in
  Array.iter
    (fun (s : Circuit.signal) ->
      let direction = if top then s.direction else None in
      sig_map.(s.id) <-
        fresh_signal acc ~name:(prefixed prefix s.name) ~width:s.width ~direction)
    c.signals;
  let remap e = Expr.map_signals (fun id -> Expr.Signal sig_map.(id)) e in
  (* Local clock resolution: module-level clock name -> flat clock name. *)
  let local = Hashtbl.create 4 in
  let resolve name =
    match Hashtbl.find_opt local name with
    | Some flat -> flat
    | None -> (
      match List.assoc_opt name clock_env with
      | Some flat -> flat
      | None -> name (* global root clock referenced by its own name *))
  in
  List.iter
    (fun clk ->
      match clk with
      | Circuit.Root_clock name ->
        let flat = resolve name in
        Hashtbl.replace local name flat;
        if not (Hashtbl.mem acc.root_clocks_seen flat) then begin
          (* Only genuinely-global clocks become flat roots; a child root
             bound to a parent's gated clock resolves to that gated name. *)
          let already_gated =
            List.exists
              (function
                | Circuit.Gated_clock { name = g; _ } -> g = flat
                | Circuit.Root_clock _ -> false)
              acc.clocks
          in
          if not already_gated then begin
            Hashtbl.add acc.root_clocks_seen flat ();
            acc.clocks <- Circuit.Root_clock flat :: acc.clocks
          end
        end
      | Circuit.Gated_clock { name; parent; enable } ->
        let flat_name = prefixed prefix name in
        let flat_parent = resolve parent in
        Hashtbl.replace local name flat_name;
        acc.clocks <-
          Circuit.Gated_clock
            { name = flat_name; parent = flat_parent; enable = remap enable }
          :: acc.clocks)
    c.clocks;
  List.iter
    (fun (r : Circuit.register) ->
      acc.registers <-
        {
          r with
          q = sig_map.(r.q);
          clock = resolve r.clock;
          next = remap r.next;
          enable = Option.map remap r.enable;
          reset = Option.map (fun (e, v) -> (remap e, v)) r.reset;
        }
        :: acc.registers)
    c.registers;
  List.iter
    (fun (m : Circuit.memory) ->
      acc.memories <-
        {
          m with
          mem_name = prefixed prefix m.mem_name;
          writes =
            List.map
              (fun (w : Circuit.write_port) ->
                {
                  Circuit.w_clock = resolve w.w_clock;
                  w_enable = remap w.w_enable;
                  w_addr = remap w.w_addr;
                  w_data = remap w.w_data;
                })
              m.writes;
          reads =
            List.map
              (fun (r : Circuit.read_port) ->
                {
                  Circuit.r_addr = remap r.r_addr;
                  r_out = sig_map.(r.r_out);
                  r_kind =
                    (match r.r_kind with
                    | Circuit.Read_comb -> Circuit.Read_comb
                    | Circuit.Read_sync clk -> Circuit.Read_sync (resolve clk));
                })
              m.reads;
        }
        :: acc.memories)
    c.memories;
  List.iter
    (fun (a : Circuit.assign) ->
      acc.assigns <- { Circuit.lhs = sig_map.(a.lhs); rhs = remap a.rhs } :: acc.assigns)
    c.assigns;
  List.iter
    (fun (i : Circuit.instance) ->
      let child = Design.find design i.module_name in
      let child_env =
        List.map
          (fun clk_name ->
            let bound =
              match List.assoc_opt clk_name i.clock_map with
              | Some parent_name -> parent_name
              | None -> clk_name
            in
            (clk_name, resolve bound))
          (Circuit.clock_names child)
      in
      let path = prefixed prefix i.inst_name in
      if Hashtbl.mem acc.units i.module_name then begin
        (* Blackbox: the instance's ports become shell-level IOs.  Inputs of
           the child are *outputs* of the shell (the shell drives them) and
           vice versa. *)
        acc.blackboxes <-
          { bb_path = path; bb_module = i.module_name; bb_clock_env = child_env }
          :: acc.blackboxes;
        List.iter
          (fun conn ->
            match conn with
            | Circuit.Drive_input (port, expr) ->
              let ps = Circuit.find_signal child port in
              let id =
                fresh_signal acc
                  ~name:(path ^ ":" ^ port)
                  ~width:ps.width ~direction:(Some Circuit.Output)
              in
              acc.assigns <- { Circuit.lhs = id; rhs = remap expr } :: acc.assigns
            | Circuit.Read_output (port, parent_sig) ->
              let ps = Circuit.find_signal child port in
              let id =
                fresh_signal acc
                  ~name:(path ^ ":" ^ port)
                  ~width:ps.width ~direction:(Some Circuit.Input)
              in
              acc.assigns <-
                { Circuit.lhs = sig_map.(parent_sig); rhs = Expr.Signal id }
                :: acc.assigns)
          i.connections
      end
      else begin
        let child_map =
          inline design acc ~prefix:path ~module_name:i.module_name
            ~clock_env:child_env ~top:false
        in
        List.iter
          (fun conn ->
            match conn with
            | Circuit.Drive_input (port, expr) ->
              let ps = Circuit.find_signal child port in
              acc.assigns <-
                { Circuit.lhs = child_map.(ps.id); rhs = remap expr } :: acc.assigns
            | Circuit.Read_output (port, parent_sig) ->
              let ps = Circuit.find_signal child port in
              acc.assigns <-
                { Circuit.lhs = sig_map.(parent_sig); rhs = Expr.Signal child_map.(ps.id) }
                :: acc.assigns)
          i.connections
      end)
    c.instances;
  sig_map

let elaborate_internal design ~units =
  let unit_tbl = Hashtbl.create 8 in
  List.iter (fun u -> Hashtbl.replace unit_tbl u ()) units;
  let acc =
    {
      signals = [];
      next_id = 0;
      clocks = [];
      registers = [];
      memories = [];
      assigns = [];
      root_clocks_seen = Hashtbl.create 4;
      blackboxes = [];
      units = unit_tbl;
    }
  in
  let top = Design.top design in
  let (_ : int array) =
    inline design acc ~prefix:"" ~module_name:top.Circuit.name ~clock_env:[]
      ~top:true
  in
  ( {
      Circuit.name = top.Circuit.name;
      signals = Array.of_list (List.rev acc.signals);
      clocks = List.rev acc.clocks;
      registers = List.rev acc.registers;
      memories = List.rev acc.memories;
      assigns = List.rev acc.assigns;
      instances = [];
    },
    List.rev acc.blackboxes )

(** Elaborate [design] into a flat circuit named after the top module. *)
let elaborate design : Circuit.t = fst (elaborate_internal design ~units:[])

(** Elaborate with the listed module names left as blackboxes: their ports
    surface as shell IOs named [path ^ ":" ^ port].  Used by hierarchical
    synthesis (vendor flow on replicated designs, VTI partitions). *)
let elaborate_shell design ~units = elaborate_internal design ~units
