(** Arbitrary-width bit vectors: the value domain shared by the RTL IR, the
    simulators, synthesized netlists and configuration frames.

    All operations are unsigned; widths are explicit and results are always
    truncated to the declared width.  Values are immutable except through
    the explicitly-named in-place helper. *)

type t

(** [zero w] / [ones w]: all-clear / all-set vectors of positive width [w]. *)
val zero : int -> t

val ones : int -> t
val width : t -> int
val copy : t -> t

(** [of_int ~width v] truncates the non-negative [v] to [width] bits. *)
val of_int : width:int -> int -> t

(** [to_int t] as an unsigned integer.  Raises [Invalid_argument] when the
    value does not fit in an OCaml [int]. *)
val to_int : t -> int

val get : t -> int -> bool

(** Functional bit update. *)
val set : t -> int -> bool -> t

(** In-place bit update; reserved for hot paths. *)
val set_inplace : t -> int -> bool -> unit

val equal : t -> t -> bool
val is_zero : t -> bool
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val reduce_or : t -> bool
val reduce_and : t -> bool
val reduce_xor : t -> bool

(** Modular arithmetic at the operand width (widths must match). *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t

(** Unsigned three-way comparison. *)
val compare_u : t -> t -> int

val lt_u : t -> t -> bool

(** [slice t ~hi ~lo] extracts bits [hi..lo] inclusive. *)
val slice : t -> hi:int -> lo:int -> t

(** [concat hi lo] places [hi] above [lo]. *)
val concat : t -> t -> t

val concat_list : t list -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** Zero-extend or truncate to the given width. *)
val resize : t -> int -> t

(** Uniformly random value (property tests). *)
val random : width:int -> Random.State.t -> t

val to_binary_string : t -> string
val of_binary_string : string -> t
val to_hex_string : t -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
