(** Per-board arbitration: a bounded FIFO of pending requests and the
    grant policy one hub tick applies to it.

    The lock discipline mirrors reader/writer semantics on the cable:
    control ops (no board traffic) and read-class ops (readback only)
    share the board freely within a tick — reads are even merged into
    one sweep downstream — while mutating ops (run control, injection,
    reprogramming) need the board exclusively: one session holds the
    write lock per tick and drains its contiguous FIFO run of mutators,
    the rest wait their turn in FIFO order.  A mutator made to wait
    behind another session's grant is a lock conflict, the contention
    signal the stats report. *)

module Repl = Zoomie_debug.Repl

type op_class = Control_op | Read_op | Mutate_op

(** Which lock a request needs.  Control ops touch only hub state;
    read-class commands issue readback sweeps; everything that changes
    board state — run control, breakpoint arming (injection), state
    injection, snapshot restore — is a mutator. *)
let classify (req : Protocol.request) =
  match req with
  | Protocol.Open_session _ | Protocol.Attach _ | Protocol.Detach
  | Protocol.Subscribe | Protocol.Unsubscribe | Protocol.Stats ->
    Control_op
  | Protocol.Read_registers _ -> Read_op
  | Protocol.Command cmd -> (
    match cmd with
    | Repl.Print _ | Repl.Mem _ | Repl.State | Repl.Cause | Repl.Cycles
    | Repl.Status | Repl.Save _ | Repl.Stats | Repl.Trace_ctl _
    | Repl.Trace_dump _ | Repl.Nop ->
      Read_op
    (* Recorder bookkeeping never touches the cable, and [when-did]
       probes checkpoints purely host-side — read-class, coalescable. *)
    | Repl.Record _ | Repl.Record_save _ | Repl.Record_status
    | Repl.When_did _ ->
      Read_op
    | Repl.Run _ | Repl.Continue _ | Repl.Pause | Repl.Resume | Repl.Step _
    | Repl.Break_all _ | Repl.Break_any _ | Repl.Watch _ | Repl.Unwatch _
    | Repl.Clear | Repl.Inject _ | Repl.Trace _ | Repl.Load _ ->
      Mutate_op
    (* Time travel restores a checkpoint and re-executes forward: board
       state changes wholesale — exclusive lock, like [Load]. *)
    | Repl.Reverse_step _ | Repl.Reverse_continue _ -> Mutate_op)

type pending = {
  p_session : int;
  p_seq : int;
  p_request : Protocol.request;
}

type t = {
  max_queue : int;
  mutable queue : pending list;  (** newest first; reversed on grant *)
}

let create ~max_queue = { max_queue; queue = [] }

let length t = List.length t.queue

(** Admission control: a saturated board refuses new work outright
    rather than growing an unbounded backlog. *)
let submit t p =
  if List.length t.queue >= t.max_queue then
    Error (Printf.sprintf "board saturated (%d requests queued)" t.max_queue)
  else begin
    t.queue <- p :: t.queue;
    Ok ()
  end

(** What one tick grants. *)
type grant = {
  g_control : pending list;
  g_reads : pending list;  (** coalescable: share the board within a tick *)
  g_mutate : pending list;
      (** the exclusive-lock holder's contiguous batch, FIFO order *)
  g_conflicts : int;
      (** mutators deferred behind another session's exclusive grant *)
}

(** Drain this tick's grant from the queue, FIFO: every control op, every
    read, and the exclusive holder's mutator batch — the first mutator's
    session keeps the lock for its contiguous run of queued mutators, up
    to the first mutator from another session (a session single-stepping
    in a tight loop drains in one tick instead of one op per tick, while
    cross-session FIFO fairness is untouched).  Deferred mutators from
    sessions other than the grant holder count as lock conflicts. *)
let schedule t =
  let fifo = List.rev t.queue in
  let control = ref [] and reads = ref [] and mutate = ref [] in
  let holder = ref None and batching = ref true in
  let kept = ref [] and conflicts = ref 0 in
  List.iter
    (fun p ->
      match classify p.p_request with
      | Control_op -> control := p :: !control
      | Read_op -> reads := p :: !reads
      | Mutate_op -> (
        match !holder with
        | None ->
          holder := Some p.p_session;
          mutate := [ p ]
        | Some h ->
          if p.p_session = h && !batching then mutate := p :: !mutate
          else begin
            if p.p_session <> h then begin
              incr conflicts;
              batching := false
            end;
            kept := p :: !kept
          end))
    fifo;
  t.queue <- !kept;  (* already newest-first *)
  {
    g_control = List.rev !control;
    g_reads = List.rev !reads;
    g_mutate = List.rev !mutate;
    g_conflicts = !conflicts;
  }

(** Remove (and return, FIFO) everything a vanished session had queued. *)
let drop_session t session =
  let mine, others = List.partition (fun p -> p.p_session = session) t.queue in
  t.queue <- others;
  List.rev mine
