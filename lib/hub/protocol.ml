(** The hub wire protocol: versioned, line-oriented framing around the
    {!Zoomie_debug.Repl} command set plus session lifecycle.

    Every frame is one line: [zh<version> <session> <seq> <verb> ...].
    Commands travel as their REPL line syntax ({!Repl.command_to_string} /
    {!Repl.parse_line} are exact inverses), register values as
    [name=<binary>] pairs, and free text with backslash escaping so
    multi-line transcripts survive the line framing.  A parser seeing a
    newer version tag refuses the frame instead of guessing. *)

open Zoomie_rtl
module Repl = Zoomie_debug.Repl

let version = 1

type request =
  | Open_session of string
      (** farm front-ends: admit a session on a board matching this device
          spec (a device name, or ["any"]).  Routed by {!Router}, never by
          a hub directly. *)
  | Attach of string  (** attach to the wrapped MUT at this path *)
  | Detach
  | Subscribe  (** join the board's stop-event fan-out *)
  | Unsubscribe
  | Read_registers of string list
      (** original (unprefixed) MUT register names — the coalescable read *)
  | Command of Repl.command
  | Stats  (** pull the hub's service counters + metrics snapshot *)

type response =
  | Done of string  (** command transcript text *)
  | Values of (string * Bits.t) list  (** demultiplexed register values *)
  | Failed of string
  | Busy of int
      (** backpressure: the shard's inbox refused admission; retry after
          this many shard-clock ticks' worth of backlog has drained *)

type event =
  | Stopped of { at_cycle : int; flags : string list; fired : string list }
      (** a breakpoint latched: stop-cause flags + fired assertion names *)
  | Session_closed of string  (** the hub dropped this session (reason) *)

type 'a frame = { fr_session : int; fr_seq : int; fr_payload : 'a }

(* --- text escaping (free text is the trailing field of its line) ----- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | c -> Buffer.add_char b c);
       i := !i + 1
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

(* Comma-joined lists use "-" for empty so the field is never missing. *)
let join_list = function [] -> "-" | l -> String.concat "," l

let split_list = function "-" -> [] | s -> String.split_on_char ',' s

(* --- emitters -------------------------------------------------------- *)

let header fr = Printf.sprintf "zh%d %d %d" version fr.fr_session fr.fr_seq

let request_to_wire fr =
  let body =
    match fr.fr_payload with
    | Open_session spec -> "open " ^ spec
    | Attach path -> "attach " ^ path
    | Detach -> "detach"
    | Subscribe -> "subscribe"
    | Unsubscribe -> "unsubscribe"
    | Read_registers names -> "read " ^ join_list names
    | Command cmd -> "cmd " ^ escape (Repl.command_to_string cmd)
    | Stats -> "stats"
  in
  header fr ^ " " ^ body

let response_to_wire fr =
  let body =
    match fr.fr_payload with
    | Done text -> "done " ^ escape text
    | Failed text -> "failed " ^ escape text
    | Busy retry_after -> Printf.sprintf "busy %d" retry_after
    | Values vs ->
      "values "
      ^ join_list
          (List.map
             (fun (n, v) -> Printf.sprintf "%s=%s" n (Bits.to_binary_string v))
             vs)
  in
  header fr ^ " " ^ body

let event_to_wire fr =
  let body =
    match fr.fr_payload with
    | Stopped { at_cycle; flags; fired } ->
      Printf.sprintf "evt-stopped %d %s %s" at_cycle (join_list flags)
        (join_list fired)
    | Session_closed reason -> "evt-closed " ^ escape reason
  in
  header fr ^ " " ^ body

(* --- parsers --------------------------------------------------------- *)

(* The numeric version of a [zh<N>] frame tag, when it is one. *)
let version_of_tag tag =
  if String.length tag > 2 && String.sub tag 0 2 = "zh" then
    int_of_string_opt (String.sub tag 2 (String.length tag - 2))
  else None

(* A frame tagged with a version we don't speak gets a descriptive
   refusal naming both sides, so the peer can report which end needs the
   upgrade — never a silent drop, never a guess at the newer syntax. *)
let version_mismatch tag =
  match version_of_tag tag with
  | Some v ->
    Printf.sprintf
      "protocol version mismatch: peer frame is zh%d, this endpoint speaks \
       zh%d (upgrade the zh%d side)"
      v version
      (min v version)
  | None ->
    Printf.sprintf "unsupported protocol tag %S (this endpoint speaks zh%d)"
      tag version

(* Split [line] into (session, seq, verb, rest-of-line); the rest keeps
   its spaces so trailing free-text fields survive. *)
let parse_header line =
  let fail msg = Error msg in
  match String.index_opt line ' ' with
  | None -> fail "truncated frame"
  | Some _ -> (
    let words = String.split_on_char ' ' line in
    match words with
    | tag :: session :: seq :: verb :: rest ->
      if tag <> Printf.sprintf "zh%d" version then fail (version_mismatch tag)
      else (
        match (int_of_string_opt session, int_of_string_opt seq) with
        | Some session, Some seq -> Ok (session, seq, verb, String.concat " " rest)
        | _ -> fail "bad session/seq")
    | _ -> fail "truncated frame")

let frame session seq payload = { fr_session = session; fr_seq = seq; fr_payload = payload }

let request_of_wire line =
  match parse_header line with
  | Error _ as e -> e
  | Ok (session, seq, verb, rest) -> (
    let ok p = Ok (frame session seq p) in
    match verb with
    | "open" -> ok (Open_session (if rest = "" then "any" else rest))
    | "attach" when rest <> "" -> ok (Attach rest)
    | "detach" -> ok Detach
    | "subscribe" -> ok Subscribe
    | "unsubscribe" -> ok Unsubscribe
    | "read" when rest <> "" -> ok (Read_registers (split_list rest))
    | "stats" -> ok Stats
    | "cmd" -> (
      match Repl.parse_line (unescape rest) with
      | Ok cmd -> ok (Command cmd)
      | Error msg -> Error ("bad command: " ^ msg))
    | v -> Error (Printf.sprintf "unknown request verb %S" v))

let response_of_wire line =
  match parse_header line with
  | Error _ as e -> e
  | Ok (session, seq, verb, rest) -> (
    let ok p = Ok (frame session seq p) in
    match verb with
    | "done" -> ok (Done (unescape rest))
    | "failed" -> ok (Failed (unescape rest))
    | "busy" -> (
      match int_of_string_opt rest with
      | Some n -> ok (Busy n)
      | None -> Error "bad busy retry-after")
    | "values" ->
      (* Parse pair-by-pair so a malformed entry yields a descriptive
         [Error] naming it.  Only the bits parser's [Invalid_argument] is
         handled — anything else (Out_of_memory, Stack_overflow, other
         asynchronous exceptions) must keep propagating. *)
      let parse_pair pair =
        match String.index_opt pair '=' with
        | None ->
          Error (Printf.sprintf "bad values payload: no '=' in pair %S" pair)
        | Some i -> (
          let name = String.sub pair 0 i in
          let bin = String.sub pair (i + 1) (String.length pair - i - 1) in
          match Bits.of_binary_string bin with
          | v -> Ok (name, v)
          | exception Invalid_argument reason ->
            Error
              (Printf.sprintf "bad values payload: pair %S: %s" pair reason))
      in
      let rec go acc = function
        | [] -> ok (Values (List.rev acc))
        | pair :: tl -> (
          match parse_pair pair with
          | Ok kv -> go (kv :: acc) tl
          | Error _ as e -> e)
      in
      go [] (split_list rest)
    | v -> Error (Printf.sprintf "unknown response verb %S" v))

let event_of_wire line =
  match parse_header line with
  | Error _ as e -> e
  | Ok (session, seq, verb, rest) -> (
    let ok p = Ok (frame session seq p) in
    match verb with
    | "evt-stopped" -> (
      match String.split_on_char ' ' rest with
      | [ cycle; flags; fired ] -> (
        match int_of_string_opt cycle with
        | Some at_cycle ->
          ok (Stopped { at_cycle; flags = split_list flags; fired = split_list fired })
        | None -> Error "bad stop cycle")
      | _ -> Error "bad stopped event")
    | "evt-closed" -> ok (Session_closed (unescape rest))
    | v -> Error (Printf.sprintf "unknown event verb %S" v))
