(** One hub client's slot: board binding, attached debug session,
    subscription flag, idle clock, and pending-event mailbox.  Time is
    hub ticks, not wall seconds — the hub owns the clock so timeout
    policy is deterministic and testable. *)

module Host = Zoomie_debug.Host
module Timeline = Zoomie_debug.Timeline

type status = Active | Timed_out | Closed

type t = {
  id : int;
  board_id : int;  (** index of the board this session is bound to *)
  mutable host : Host.t option;  (** present once attached *)
  mutable tl : Timeline.session option;
      (** recorder-capable front-end around [host]; created lazily on the
          first command after an attach and dropped with the attachment —
          a recording is per-attachment state, like breakpoints *)
  mutable subscribed : bool;
  mutable last_active : int;  (** hub tick of the last submitted request *)
  mutable status : status;
  mutable migrating : bool;
      (** mid-flight to another board: exempt from idle reaping *)
  mutable mailbox : Protocol.event Protocol.frame list;  (** newest first *)
}

val create : id:int -> board_id:int -> now:int -> t

val is_active : t -> bool

val touch : t -> now:int -> unit

val idle_for : t -> now:int -> int

(** Queue one event; the client collects it on its next poll. *)
val deliver : t -> seq:int -> Protocol.event -> unit

(** Pending events in delivery order; empties the mailbox. *)
val drain_mailbox : t -> Protocol.event Protocol.frame list

(** Mark the session gone; drops the attachment and subscription. *)
val close : t -> status -> unit
