(** The cross-session readback coalescer: merge the frame plans of every
    read queued in a tick into one deduplicated sweep, then demultiplex
    per-session results from the shared frame response.  k clients with
    overlapping selections cost one union-sized cable transfer instead
    of k selection-sized ones; the saving is accounted against the
    modeled standalone cost of each plan. *)

module Board = Zoomie_bitstream.Board
module Host = Zoomie_debug.Host
module Readback = Zoomie_debug.Readback

type read_request = {
  rd_session : int;
  rd_seq : int;
  rd_prefix : string;  (** hierarchical prefix stripped from result names *)
  rd_names : string list;  (** full hierarchical register names *)
  rd_plan : Readback.plan;
}

(** Build one session's coalescable read from its original (unprefixed)
    register names.  [Error] on unknown names — validated here, before
    the request can join a merged sweep. *)
val request :
  Host.t ->
  session:int ->
  seq:int ->
  names:string list ->
  (read_request, string) result

type sweep_result = {
  sw_values : (int * int * (string * Zoomie_rtl.Bits.t) list) list;
      (** per request: (session, seq, short-named values) *)
  sw_frames_read : int;  (** frames in the merged sweep *)
  sw_frames_requested : int;  (** sum of the individual plans' frames *)
  sw_seconds : float;  (** actual modeled cable time of the merged sweep *)
  sw_serial_seconds : float;
      (** modeled cost had each request swept alone (the baseline) *)
}

(** Modeled cable cost of executing [plan] standalone: one sweep per SLR
    it touches, priced by the {!Zoomie_bitstream.Jtag} transport model. *)
val serial_seconds : Board.t -> Readback.plan -> float

(** Execute all requests as one merged sweep and demultiplex.  Result
    names are the original (unprefixed) ones each client asked with. *)
val sweep : Board.t -> Readback.site_map -> read_request list -> sweep_result
