(** Length-prefixed framing for zh1 lines on a byte stream.

    The wire protocol is line-shaped ([zh1 <session> <seq> <verb> ...])
    but sockets deliver arbitrary byte runs, so each line travels behind
    a 4-byte big-endian length prefix.  Two surfaces: blocking
    [write_frame]/[read_frame] for simple clients, and an incremental
    {!decoder} for the server's select loop, which must never block on a
    half-received frame. *)

exception Frame_error of string

(* A frame is one protocol line; anything near a megabyte is a bug or an
   attack, not a transcript. *)
let max_frame = 1 lsl 20

let encode payload =
  let n = String.length payload in
  if n > max_frame then
    raise (Frame_error (Printf.sprintf "frame too large (%d bytes)" n));
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  b

(* Loop until the whole buffer is on the wire; Unix.write may be short. *)
let write_all fd b =
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let write_frame fd payload = write_all fd (encode payload)

(* Read exactly [n] bytes, or [None] on a clean EOF at a frame boundary
   ([exact] false).  EOF mid-frame is a protocol error. *)
let read_exactly fd n ~exact =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match Unix.read fd b !off (n - !off) with
    | 0 ->
      if !off = 0 && not exact then eof := true
      else raise (Frame_error "connection closed mid-frame")
    | k -> off := !off + k
  done;
  if !eof then None else Some b

let read_frame fd =
  match read_exactly fd 4 ~exact:false with
  | None -> None
  | Some hdr ->
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then
      raise (Frame_error (Printf.sprintf "bad frame length %d" n));
    if n = 0 then Some ""
    else (
      match read_exactly fd n ~exact:true with
      | None -> assert false (* exact:true never yields None *)
      | Some b -> Some (Bytes.to_string b))

(* --- incremental decoder --------------------------------------------- *)

type decoder = {
  buf : Buffer.t;  (** bytes received, not yet consumed *)
  mutable consumed : int;  (** prefix of [buf] already decoded *)
}

let decoder () = { buf = Buffer.create 256; consumed = 0 }

let feed d bytes ~off ~len = Buffer.add_subbytes d.buf bytes off len

(* Compact once the consumed prefix dominates, so a long-lived connection
   doesn't grow its buffer forever. *)
let compact d =
  if d.consumed > 4096 && d.consumed * 2 > Buffer.length d.buf then begin
    let rest =
      Buffer.sub d.buf d.consumed (Buffer.length d.buf - d.consumed)
    in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.consumed <- 0
  end

let next d =
  let avail = Buffer.length d.buf - d.consumed in
  if avail < 4 then None
  else begin
    let n =
      Int32.to_int
        (String.get_int32_be (Buffer.sub d.buf d.consumed 4) 0)
    in
    if n < 0 || n > max_frame then
      raise (Frame_error (Printf.sprintf "bad frame length %d" n));
    if avail < 4 + n then None
    else begin
      let payload = Buffer.sub d.buf (d.consumed + 4) n in
      d.consumed <- d.consumed + 4 + n;
      compact d;
      Some payload
    end
  end
