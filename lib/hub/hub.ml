(** The multi-session debug server: N clients, a pool of boards, one
    arbiter.

    A hub owns its boards (advisory {!Board.acquire_lease}) and advances
    in discrete ticks.  Each tick, per board: session-lifecycle ops run
    first (no cable traffic), then every queued read shares the board —
    register reads merged into one coalesced sweep ({!Coalesce}) — then
    exactly one mutating command holds it exclusively ({!Scheduler}).
    After a mutator runs, one status readback serves every subscribed
    session: a latched stop becomes a {!Protocol.Stopped} event fanned
    out to all subscribers, replacing their individual polls.  Sessions
    idle past the configured tick budget are reaped, their queued work
    failed and a [Session_closed] event left in their mailbox.

    Everything is deterministic — the hub owns the clock (ticks) and the
    cable time is the board's modeled {!Board.jtag_seconds} — so the
    arbitration and coalescing behavior is exactly reproducible in tests
    and benches. *)

module Board = Zoomie_bitstream.Board
module Controller = Zoomie_debug.Controller
module Device = Zoomie_fabric.Device
module Host = Zoomie_debug.Host
module Readback = Zoomie_debug.Readback
module Repl = Zoomie_debug.Repl
module Timeline = Zoomie_debug.Timeline
module Obs = Zoomie_obs.Obs

type config = {
  max_sessions_per_board : int;  (** admission: concurrent sessions *)
  max_queue : int;  (** admission: queued requests per board *)
  session_timeout_ticks : int;  (** idle ticks before a session is reaped *)
}

let default_config =
  { max_sessions_per_board = 64; max_queue = 256; session_timeout_ticks = 100 }

(* The hub's name on the advisory board lease. *)
let lease_owner = "zoomie-hub"

type board_entry = {
  be_id : int;
  be_board : Board.t;
  be_info : Controller.info;
  be_site_map : Readback.site_map;
      (* built once per board; every session attach reuses it *)
  be_queue : Scheduler.t;
  mutable be_subscribers : int list;  (* subscription order *)
  mutable be_last_used : int;
      (* hub tick of the last cable traffic (reads or mutators) on this
         board — the lease-idle clock.  Control ops don't touch it: a
         session polling [Stats] keeps itself alive while its board goes
         cable-idle, which is exactly when the farm wants to migrate. *)
}

type t = {
  config : config;
  publish_globals : bool;
      (* farm shards run one hub per domain: publishing the shared
         [hub.*] gauges from every shard would be last-writer-wins noise,
         so shards publish only through their own [Stats.mirror] *)
  boards : (int, board_entry) Hashtbl.t;
  mutable next_board : int;
  sessions : (int, Session.t) Hashtbl.t;
  mutable next_session : int;
  mutable now : int;  (* the hub tick clock *)
  mutable ev_seq : int;  (* event sequence numbers, shared across a fan-out *)
  stats : Stats.t;
}

let create ?(config = default_config) ?(publish_globals = true) () =
  {
    config;
    publish_globals;
    boards = Hashtbl.create 4;
    next_board = 0;
    sessions = Hashtbl.create 16;
    next_session = 0;
    now = 0;
    ev_seq = 0;
    stats = Stats.create ();
  }

let stats t = t.stats

let now t = t.now

(** Put a board under hub ownership.  Fails when another driver holds its
    lease or it has no configured design.  The per-design site map is
    built here, once, and shared by every session that attaches. *)
let add_board t board ~info =
  match Board.acquire_lease board ~owner:lease_owner with
  | Error msg -> Error msg
  | Ok () -> (
    match
      try Some (Board.payload board) with Invalid_argument _ -> None
    with
    | None ->
      Board.release_lease board ~owner:lease_owner;
      Error "board has no configured design"
    | Some payload ->
      let id = t.next_board in
      t.next_board <- id + 1;
      Hashtbl.replace t.boards id
        {
          be_id = id;
          be_board = board;
          be_info = info;
          be_site_map =
            Readback.site_map (Board.device board) payload.Board.netlist
              payload.Board.locmap;
          be_queue = Scheduler.create ~max_queue:t.config.max_queue;
          be_subscribers = [];
          be_last_used = t.now;
        };
      Ok id)

let board_ids t = List.sort compare (Hashtbl.fold (fun k _ l -> k :: l) t.boards [])

let board t board_id =
  Option.map (fun be -> be.be_board) (Hashtbl.find_opt t.boards board_id)

let board_device t board_id =
  match Hashtbl.find_opt t.boards board_id with
  | None -> None
  | Some be -> Some (Board.device be.be_board).Device.name

(** Hub ticks since this board last saw cable traffic — the farm's
    lease-idle clock, measured on the shard's own tick counter so expiry
    policy stays deterministic. *)
let board_idle_for t board_id =
  match Hashtbl.find_opt t.boards board_id with
  | None -> None
  | Some be -> Some (t.now - be.be_last_used)

let active_sessions_on t board_id =
  Hashtbl.fold
    (fun _ (s : Session.t) n ->
      if s.Session.board_id = board_id && Session.is_active s then n + 1 else n)
    t.sessions 0

(** Admit a new session bound to [board]. *)
let open_session t ~board =
  match Hashtbl.find_opt t.boards board with
  | None -> Error (Printf.sprintf "no board %d" board)
  | Some _ ->
    if active_sessions_on t board >= t.config.max_sessions_per_board then
      Error
        (Printf.sprintf "board %d saturated (%d sessions)" board
           t.config.max_sessions_per_board)
    else begin
      let id = t.next_session in
      t.next_session <- id + 1;
      Hashtbl.replace t.sessions id
        (Session.create ~id ~board_id:board ~now:t.now);
      Ok id
    end

let session_status t id =
  Option.map (fun (s : Session.t) -> s.Session.status) (Hashtbl.find_opt t.sessions id)

(** Queue one request.  [Error] when the session is unknown or gone, or
    when the board's backlog refuses admission. *)
let submit t (fr : Protocol.request Protocol.frame) =
  match Hashtbl.find_opt t.sessions fr.Protocol.fr_session with
  | None -> Error (Printf.sprintf "no session %d" fr.Protocol.fr_session)
  | Some s when not (Session.is_active s) ->
    Error
      (match s.Session.status with
      | Session.Timed_out -> "session timed out"
      | _ -> "session closed")
  | Some s -> (
    let be = Hashtbl.find t.boards s.Session.board_id in
    match
      Scheduler.submit be.be_queue
        {
          Scheduler.p_session = fr.Protocol.fr_session;
          p_seq = fr.Protocol.fr_seq;
          p_request = fr.Protocol.fr_payload;
        }
    with
    | Ok () ->
      Session.touch s ~now:t.now;
      t.stats.Stats.requests <- t.stats.Stats.requests + 1;
      Ok ()
    | Error _ as e ->
      t.stats.Stats.rejected <- t.stats.Stats.rejected + 1;
      e)

(** Pending events for one session, in delivery order (empties its
    mailbox).  Works on closed sessions too — the [Session_closed]
    notice must remain collectable. *)
let events t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> []
  | Some s -> Session.drain_mailbox s

let unsubscribe_from be session =
  be.be_subscribers <- List.filter (fun s -> s <> session) be.be_subscribers

(** Requests queued across every board — a shard drains its hub by
    ticking while this is non-zero. *)
let queued t =
  Hashtbl.fold (fun _ be n -> n + Scheduler.length be.be_queue) t.boards 0

let queued_for t board_id =
  match Hashtbl.find_opt t.boards board_id with
  | None -> 0
  | Some be -> Scheduler.length be.be_queue

let set_migrating t session v =
  match Hashtbl.find_opt t.sessions session with
  | Some s -> s.Session.migrating <- v
  | None -> ()

(* Detach a session from hub bookkeeping without producing responses:
   queue dropped, subscription removed.  The caller decides what story
   (if any) the client hears. *)
let detach_session_quietly t (s : Session.t) =
  (match Hashtbl.find_opt t.boards s.Session.board_id with
  | Some be ->
    ignore (Scheduler.drop_session be.be_queue s.Session.id);
    unsubscribe_from be s.Session.id
  | None -> ());
  s.Session.host <- None;
  s.Session.tl <- None;
  s.Session.subscribed <- false

(** Close a session without an event or failure responses — the farm's
    path for a client that disconnected (nobody is left to read the
    mailbox) and for freeing a slot after export. *)
let close_session t session =
  match Hashtbl.find_opt t.sessions session with
  | None -> ()
  | Some s ->
    detach_session_quietly t s;
    Session.close s Session.Closed

(** Lift a session out of this hub for migration: returns what the target
    hub needs to rebuild it ([mut_path] of its attachment, subscription
    flag), then removes it.  The caller must have quiesced its queued
    work first; anything still pending is dropped. *)
let export_session t session =
  match Hashtbl.find_opt t.sessions session with
  | None -> Error (Printf.sprintf "no session %d" session)
  | Some s when not (Session.is_active s) -> Error "session not active"
  | Some s ->
    let mut_path = Option.map Host.mut_path s.Session.host in
    let subscribed = s.Session.subscribed in
    detach_session_quietly t s;
    Hashtbl.remove t.sessions session;
    Ok (mut_path, subscribed)

(** Rebuild an exported session on [board] (freshly restored from the
    source board's snapshot, so a re-attach sees identical fabric state —
    breakpoints, latched stops, cycle counter and all).  The new session
    is touched with THIS hub's clock: a migrated session must never be
    reaped because its [last_active] came from another shard's timeline.
    Bypasses the admission cap — migration is the hub rebalancing its own
    load, not new demand. *)
let import_session t ~board ~mut_path ~subscribed =
  match Hashtbl.find_opt t.boards board with
  | None -> Error (Printf.sprintf "no board %d" board)
  | Some be -> (
    let id = t.next_session in
    let s = Session.create ~id ~board_id:board ~now:t.now in
    match
      Option.map
        (fun mut_path ->
          Host.attach ~site_map:be.be_site_map be.be_board ~info:be.be_info
            ~mut_path)
        mut_path
    with
    | exception Invalid_argument msg -> Error ("re-attach failed: " ^ msg)
    | host ->
      t.next_session <- id + 1;
      s.Session.host <- host;
      if subscribed then begin
        s.Session.subscribed <- true;
        be.be_subscribers <- be.be_subscribers @ [ id ]
      end;
      Hashtbl.replace t.sessions id s;
      Ok id)

(** Release a board from hub ownership (migration source after its
    sessions are exported).  Refuses while active sessions are bound to
    it.  Releases the advisory lease and returns the board so the caller
    can snapshot or retire it. *)
let remove_board t board_id =
  match Hashtbl.find_opt t.boards board_id with
  | None -> Error (Printf.sprintf "no board %d" board_id)
  | Some be ->
    if active_sessions_on t board_id > 0 then
      Error
        (Printf.sprintf "board %d has %d active sessions" board_id
           (active_sessions_on t board_id))
    else begin
      Hashtbl.remove t.boards board_id;
      Board.release_lease be.be_board ~owner:lease_owner;
      Ok be.be_board
    end

(* --- tick internals -------------------------------------------------- *)

let respond t acc (p : Scheduler.pending) payload =
  t.stats.Stats.responses <- t.stats.Stats.responses + 1;
  {
    Protocol.fr_session = p.Scheduler.p_session;
    fr_seq = p.Scheduler.p_seq;
    fr_payload = payload;
  }
  :: acc

(* The session's recorder-capable command front-end, created lazily the
   first time a command runs after an attach and replaced whenever the
   attachment's host changes (re-attach, migration import): a recording
   is per-attachment state, exactly like breakpoints. *)
let timeline_session (s : Session.t) host be =
  match s.Session.tl with
  | Some ts when ts.Timeline.ts_host == host -> ts
  | _ ->
    let ts = Timeline.session ~rig:"hub" host be.be_board in
    s.Session.tl <- Some ts;
    ts

(* Run one REPL command — through the session's timeline layer, so the
   time-travel verbs work over the hub — mapping the engine's exceptions
   to Failed. *)
let exec_command ts cmd =
  try Protocol.Done (Timeline.execute ts cmd) with
  | Invalid_argument msg -> Protocol.Failed msg
  | Readback.Readback_error msg -> Protocol.Failed msg
  | Readback.Bad_snapshot msg -> Protocol.Failed ("bad snapshot: " ^ msg)
  | Timeline.Bad_recording msg -> Protocol.Failed ("bad recording: " ^ msg)

(* Session-lifecycle ops: no cable traffic, never block. *)
let run_control t be acc (p : Scheduler.pending) =
  let s = Hashtbl.find t.sessions p.Scheduler.p_session in
  let payload =
    match p.Scheduler.p_request with
    | Protocol.Attach mut_path -> (
      try
        s.Session.host <-
          Some
            (Host.attach ~site_map:be.be_site_map be.be_board ~info:be.be_info
               ~mut_path);
        Protocol.Done ("attached " ^ mut_path)
      with Invalid_argument msg -> Protocol.Failed msg)
    | Protocol.Detach ->
      s.Session.host <- None;
      s.Session.tl <- None;
      s.Session.subscribed <- false;
      unsubscribe_from be p.Scheduler.p_session;
      Protocol.Done "detached"
    | Protocol.Subscribe ->
      if not s.Session.subscribed then begin
        s.Session.subscribed <- true;
        be.be_subscribers <- be.be_subscribers @ [ p.Scheduler.p_session ]
      end;
      Protocol.Done "subscribed"
    | Protocol.Unsubscribe ->
      s.Session.subscribed <- false;
      unsubscribe_from be p.Scheduler.p_session;
      Protocol.Done "unsubscribed"
    | Protocol.Stats ->
      (* Answered from hub state + the metrics registry: no cable
         traffic, so remote clients can poll server health for free. *)
      if t.publish_globals then Stats.publish t.stats;
      Protocol.Done
        (Stats.summary t.stats ^ "\n"
        ^ Obs.snapshot_summary (Obs.snapshot ()))
    | Protocol.Open_session _ ->
      (* Session admission is the router's job in a farm; a hub that
         sees this frame has no front-end to route it. *)
      Protocol.Failed "open: not routed by a hub (connect through a farm)"
    | Protocol.Read_registers _ | Protocol.Command _ ->
      Protocol.Failed "not a control op"
  in
  respond t acc p payload

(* Read-class grants: command reads execute directly; register reads are
   gathered into one coalesced sweep, then every response is emitted in
   grant (FIFO) order. *)
let run_reads t be acc (reads : Scheduler.pending list) =
  let slots =
    List.map
      (fun (p : Scheduler.pending) ->
        let s = Hashtbl.find t.sessions p.Scheduler.p_session in
        match (s.Session.host, p.Scheduler.p_request) with
        | None, _ -> (p, Either.Left (Protocol.Failed "not attached"))
        | Some host, Protocol.Read_registers names -> (
          match
            Coalesce.request host ~session:p.Scheduler.p_session
              ~seq:p.Scheduler.p_seq ~names
          with
          | Ok r -> (p, Either.Right r)
          | Error msg -> (p, Either.Left (Protocol.Failed msg)))
        | Some host, Protocol.Command cmd ->
          if cmd = Repl.Status then
            t.stats.Stats.status_polls <- t.stats.Stats.status_polls + 1;
          (p, Either.Left (exec_command (timeline_session s host be) cmd))
        | Some _, _ -> (p, Either.Left (Protocol.Failed "not a read op")))
      reads
  in
  let requests = List.filter_map (fun (_, e) -> Either.find_right e) slots in
  let swept = Hashtbl.create 8 in
  if requests <> [] then begin
    let result = Coalesce.sweep be.be_board be.be_site_map requests in
    t.stats.Stats.sweeps <- t.stats.Stats.sweeps + 1;
    t.stats.Stats.coalesced_reads <-
      t.stats.Stats.coalesced_reads + List.length requests;
    t.stats.Stats.frames_read <-
      t.stats.Stats.frames_read + result.Coalesce.sw_frames_read;
    t.stats.Stats.frames_requested <-
      t.stats.Stats.frames_requested + result.Coalesce.sw_frames_requested;
    t.stats.Stats.cable_seconds <-
      t.stats.Stats.cable_seconds +. result.Coalesce.sw_seconds;
    t.stats.Stats.serial_cable_seconds <-
      t.stats.Stats.serial_cable_seconds +. result.Coalesce.sw_serial_seconds;
    List.iter
      (fun (session, seq, values) ->
        Hashtbl.replace swept (session, seq) values)
      result.Coalesce.sw_values
  end;
  List.fold_left
    (fun acc ((p : Scheduler.pending), slot) ->
      match slot with
      | Either.Left payload -> respond t acc p payload
      | Either.Right _ ->
        let values =
          Hashtbl.find swept (p.Scheduler.p_session, p.Scheduler.p_seq)
        in
        respond t acc p (Protocol.Values values))
    acc slots

(* Fan a latched stop out to every subscriber: one status readback by the
   hub replaces one poll per client. *)
let poll_events t be =
  match be.be_subscribers with
  | [] -> ()
  | subs -> (
    let live =
      List.filter_map
        (fun id ->
          match Hashtbl.find_opt t.sessions id with
          | Some s when Session.is_active s && s.Session.host <> None ->
            Some (id, Option.get s.Session.host)
          | _ -> None)
        subs
    in
    match live with
    | [] -> ()
    | (_, host) :: _ ->
      t.stats.Stats.status_polls <- t.stats.Stats.status_polls + 1;
      if Host.is_stopped host then begin
        let cause = Host.stop_cause host in
        let flags =
          List.filter_map
            (fun (b, name) -> if b then Some name else None)
            [
              (cause.Host.value_bp, "value");
              (cause.Host.cycle_bp, "cycle");
              (cause.Host.assertion_bp, "assertion");
              (cause.Host.watch_bp, "watch");
            ]
        in
        let event =
          Protocol.Stopped
            {
              at_cycle = Host.mut_cycles host;
              flags;
              fired = Host.fired_assertions host;
            }
        in
        let seq = t.ev_seq in
        t.ev_seq <- seq + 1;
        List.iter
          (fun (id, _) ->
            Session.deliver (Hashtbl.find t.sessions id) ~seq event)
          live;
        t.stats.Stats.events_published <- t.stats.Stats.events_published + 1;
        t.stats.Stats.events_delivered <-
          t.stats.Stats.events_delivered + List.length live;
        (* every subscriber beyond the poll that detected the stop would
           have burned its own status readback *)
        t.stats.Stats.polls_avoided <-
          t.stats.Stats.polls_avoided + (List.length live - 1)
      end)

(* Reap sessions idle past the budget: fail their queued work, leave a
   Session_closed notice in the mailbox, free their board slot. *)
let reap_timeouts t acc =
  Hashtbl.fold
    (fun _ (s : Session.t) acc ->
      if
        Session.is_active s
        && (not s.Session.migrating)
        && Session.idle_for s ~now:t.now > t.config.session_timeout_ticks
      then begin
        let be = Hashtbl.find t.boards s.Session.board_id in
        let dropped = Scheduler.drop_session be.be_queue s.Session.id in
        let acc =
          List.fold_left
            (fun acc p -> respond t acc p (Protocol.Failed "session timed out"))
            acc dropped
        in
        unsubscribe_from be s.Session.id;
        let seq = t.ev_seq in
        t.ev_seq <- seq + 1;
        Session.deliver s ~seq
          (Protocol.Session_closed
             (Printf.sprintf "idle for %d ticks" (Session.idle_for s ~now:t.now)));
        Session.close s Session.Timed_out;
        t.stats.Stats.timeouts <- t.stats.Stats.timeouts + 1;
        acc
      end
      else acc)
    t.sessions acc

(** Advance the hub one tick: per board, grant and run this tick's
    schedule (control ops, then the coalesced reads, then the exclusive
    holder's mutator batch + event fan-out), then reap idle sessions.
    Returns the responses produced, in grant order. *)
let tick t =
  t.now <- t.now + 1;
  t.stats.Stats.ticks <- t.stats.Stats.ticks + 1;
  let acc =
    List.fold_left
      (fun acc bid ->
        let be = Hashtbl.find t.boards bid in
        let mclock () = Board.jtag_seconds be.be_board in
        Obs.span ~cat:"hub" ~mclock "hub.tick" (fun () ->
            let grant = Scheduler.schedule be.be_queue in
            t.stats.Stats.lock_conflicts <-
              t.stats.Stats.lock_conflicts + grant.Scheduler.g_conflicts;
            let acc =
              List.fold_left (fun acc p -> run_control t be acc p) acc
                grant.Scheduler.g_control
            in
            if grant.Scheduler.g_reads <> [] || grant.Scheduler.g_mutate <> []
            then be.be_last_used <- t.now;
            let acc = run_reads t be acc grant.Scheduler.g_reads in
            match grant.Scheduler.g_mutate with
            | [] -> acc
            | mutators ->
              (* The holder's whole batch runs under one exclusive grant. *)
              let acc =
                Obs.span ~cat:"hub" ~mclock "hub.mutate" (fun () ->
                    List.fold_left
                      (fun acc p ->
                        let s =
                          Hashtbl.find t.sessions p.Scheduler.p_session
                        in
                        match (s.Session.host, p.Scheduler.p_request) with
                        | None, _ ->
                          respond t acc p (Protocol.Failed "not attached")
                        | Some host, Protocol.Command cmd ->
                          respond t acc p
                            (exec_command (timeline_session s host be) cmd)
                        | Some _, _ ->
                          respond t acc p (Protocol.Failed "not a mutate op"))
                      acc mutators)
              in
              Obs.span ~cat:"hub" ~mclock "hub.fanout" (fun () ->
                  poll_events t be);
              acc))
      [] (board_ids t)
  in
  let acc = reap_timeouts t acc in
  if t.publish_globals then Stats.publish t.stats;
  List.rev acc

(** Submit one request and tick until its response arrives (convenience
    for single-threaded drivers; responses to other sessions produced by
    the intervening ticks are discarded). *)
let call ?(max_ticks = 100) t (fr : Protocol.request Protocol.frame) =
  let fail msg =
    {
      Protocol.fr_session = fr.Protocol.fr_session;
      fr_seq = fr.Protocol.fr_seq;
      fr_payload = Protocol.Failed msg;
    }
  in
  match submit t fr with
  | Error msg -> fail msg
  | Ok () ->
    let rec loop n =
      if n <= 0 then fail "no response (hub starved?)"
      else
        match
          List.find_opt
            (fun (r : Protocol.response Protocol.frame) ->
              r.Protocol.fr_session = fr.Protocol.fr_session
              && r.Protocol.fr_seq = fr.Protocol.fr_seq)
            (tick t)
        with
        | Some r -> r
        | None -> loop (n - 1)
    in
    loop max_ticks
