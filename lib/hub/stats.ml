(** Hub service counters: arbitration, coalescing, and event-bus
    effectiveness, all in modeled units so benches and tests can assert
    on them deterministically. *)

type t = {
  mutable ticks : int;
  mutable requests : int;  (** admitted *)
  mutable responses : int;
  mutable rejected : int;  (** refused by admission control *)
  mutable lock_conflicts : int;  (** mutators deferred behind another session *)
  mutable timeouts : int;  (** sessions reaped idle *)
  mutable sweeps : int;  (** merged readback sweeps executed *)
  mutable coalesced_reads : int;  (** read requests served by those sweeps *)
  mutable frames_read : int;  (** frames actually swept (union) *)
  mutable frames_requested : int;  (** frames the plans asked for (sum) *)
  mutable cable_seconds : float;  (** modeled time of the merged sweeps *)
  mutable serial_cable_seconds : float;
      (** modeled time had every read swept alone *)
  mutable events_published : int;  (** stop events detected *)
  mutable events_delivered : int;  (** per-subscriber deliveries *)
  mutable status_polls : int;  (** status readbacks the hub issued *)
  mutable polls_avoided : int;
      (** subscriber polls replaced by fan-out (deliveries beyond the
          one poll that detected the stop) *)
}

let create () =
  {
    ticks = 0;
    requests = 0;
    responses = 0;
    rejected = 0;
    lock_conflicts = 0;
    timeouts = 0;
    sweeps = 0;
    coalesced_reads = 0;
    frames_read = 0;
    frames_requested = 0;
    cable_seconds = 0.0;
    serial_cable_seconds = 0.0;
    events_published = 0;
    events_delivered = 0;
    status_polls = 0;
    polls_avoided = 0;
  }

(** Modeled cable time the coalescer saved versus serialized sweeps. *)
let saved_seconds t = t.serial_cable_seconds -. t.cable_seconds

let summary t =
  (* Before any sweep has run, both cable totals are 0: there is no
     saving to clamp negative and no ratio to divide — print 0 and n/a
     rather than -0.0000 / inf / nan. *)
  let saved = Float.max 0.0 (saved_seconds t) in
  let ratio =
    if t.serial_cable_seconds = 0.0 || t.cable_seconds = 0.0 then "n/a"
    else Printf.sprintf "%.2fx" (t.serial_cable_seconds /. t.cable_seconds)
  in
  String.concat "\n"
    [
      Printf.sprintf "ticks=%d requests=%d responses=%d rejected=%d" t.ticks
        t.requests t.responses t.rejected;
      Printf.sprintf "lock_conflicts=%d timeouts=%d" t.lock_conflicts
        t.timeouts;
      Printf.sprintf
        "sweeps=%d coalesced_reads=%d frames_read=%d frames_requested=%d"
        t.sweeps t.coalesced_reads t.frames_read t.frames_requested;
      Printf.sprintf
        "cable_seconds=%.4f serial_cable_seconds=%.4f saved_seconds=%.4f \
         coalescing=%s"
        t.cable_seconds t.serial_cable_seconds saved ratio;
      Printf.sprintf
        "events_published=%d events_delivered=%d status_polls=%d \
         polls_avoided=%d"
        t.events_published t.events_delivered t.status_polls t.polls_avoided;
    ]

let pp fmt t = Format.pp_print_string fmt (summary t)

(* --- registry mirror --------------------------------------------------- *)

module Obs = Zoomie_obs.Obs

(* The record above stays the hub's authoritative store (tests assert on
   its fields directly); [publish] rebases the same numbers onto the
   global metrics registry so the REPL [stats] command, the protocol
   [Stats] request and the bench snapshots all read hub health from the
   one substrate.  Gauges, not counters: stats fields are absolute. *)
let g_ticks = Obs.gauge "hub.ticks"
let g_requests = Obs.gauge "hub.requests"
let g_responses = Obs.gauge "hub.responses"
let g_rejected = Obs.gauge "hub.rejected"
let g_lock_conflicts = Obs.gauge "hub.lock_conflicts"
let g_timeouts = Obs.gauge "hub.timeouts"
let g_sweeps = Obs.gauge "hub.sweeps"
let g_coalesced_reads = Obs.gauge "hub.coalesced_reads"
let g_frames_read = Obs.gauge "hub.frames_read"
let g_frames_requested = Obs.gauge "hub.frames_requested"
let g_cable_seconds = Obs.gauge "hub.cable_seconds"
let g_serial_cable_seconds = Obs.gauge "hub.serial_cable_seconds"
let g_events_published = Obs.gauge "hub.events_published"
let g_events_delivered = Obs.gauge "hub.events_delivered"
let g_status_polls = Obs.gauge "hub.status_polls"
let g_polls_avoided = Obs.gauge "hub.polls_avoided"

(* A farm shard mirrors its hub's stats under its own prefix
   ([farm.shard<i>.hub.*]) so per-shard health is visible without the
   shards racing each other on the global [hub.*] gauges (the registry
   is mutex-protected, but last-writer-wins across domains would make
   the globals meaningless).  Handles are created once per shard. *)
type mirror = {
  m_ticks : Obs.gauge;
  m_requests : Obs.gauge;
  m_responses : Obs.gauge;
  m_rejected : Obs.gauge;
  m_lock_conflicts : Obs.gauge;
  m_timeouts : Obs.gauge;
  m_sweeps : Obs.gauge;
  m_coalesced_reads : Obs.gauge;
  m_frames_read : Obs.gauge;
  m_frames_requested : Obs.gauge;
  m_cable_seconds : Obs.gauge;
  m_serial_cable_seconds : Obs.gauge;
  m_events_published : Obs.gauge;
  m_events_delivered : Obs.gauge;
  m_status_polls : Obs.gauge;
  m_polls_avoided : Obs.gauge;
}

let mirror prefix =
  let g name = Obs.gauge (prefix ^ "." ^ name) in
  {
    m_ticks = g "hub.ticks";
    m_requests = g "hub.requests";
    m_responses = g "hub.responses";
    m_rejected = g "hub.rejected";
    m_lock_conflicts = g "hub.lock_conflicts";
    m_timeouts = g "hub.timeouts";
    m_sweeps = g "hub.sweeps";
    m_coalesced_reads = g "hub.coalesced_reads";
    m_frames_read = g "hub.frames_read";
    m_frames_requested = g "hub.frames_requested";
    m_cable_seconds = g "hub.cable_seconds";
    m_serial_cable_seconds = g "hub.serial_cable_seconds";
    m_events_published = g "hub.events_published";
    m_events_delivered = g "hub.events_delivered";
    m_status_polls = g "hub.status_polls";
    m_polls_avoided = g "hub.polls_avoided";
  }

let publish_to m t =
  let fi = float_of_int in
  Obs.set_gauge m.m_ticks (fi t.ticks);
  Obs.set_gauge m.m_requests (fi t.requests);
  Obs.set_gauge m.m_responses (fi t.responses);
  Obs.set_gauge m.m_rejected (fi t.rejected);
  Obs.set_gauge m.m_lock_conflicts (fi t.lock_conflicts);
  Obs.set_gauge m.m_timeouts (fi t.timeouts);
  Obs.set_gauge m.m_sweeps (fi t.sweeps);
  Obs.set_gauge m.m_coalesced_reads (fi t.coalesced_reads);
  Obs.set_gauge m.m_frames_read (fi t.frames_read);
  Obs.set_gauge m.m_frames_requested (fi t.frames_requested);
  Obs.set_gauge m.m_cable_seconds t.cable_seconds;
  Obs.set_gauge m.m_serial_cable_seconds t.serial_cable_seconds;
  Obs.set_gauge m.m_events_published (fi t.events_published);
  Obs.set_gauge m.m_events_delivered (fi t.events_delivered);
  Obs.set_gauge m.m_status_polls (fi t.status_polls);
  Obs.set_gauge m.m_polls_avoided (fi t.polls_avoided)

let publish t =
  let fi = float_of_int in
  Obs.set_gauge g_ticks (fi t.ticks);
  Obs.set_gauge g_requests (fi t.requests);
  Obs.set_gauge g_responses (fi t.responses);
  Obs.set_gauge g_rejected (fi t.rejected);
  Obs.set_gauge g_lock_conflicts (fi t.lock_conflicts);
  Obs.set_gauge g_timeouts (fi t.timeouts);
  Obs.set_gauge g_sweeps (fi t.sweeps);
  Obs.set_gauge g_coalesced_reads (fi t.coalesced_reads);
  Obs.set_gauge g_frames_read (fi t.frames_read);
  Obs.set_gauge g_frames_requested (fi t.frames_requested);
  Obs.set_gauge g_cable_seconds t.cable_seconds;
  Obs.set_gauge g_serial_cable_seconds t.serial_cable_seconds;
  Obs.set_gauge g_events_published (fi t.events_published);
  Obs.set_gauge g_events_delivered (fi t.events_delivered);
  Obs.set_gauge g_status_polls (fi t.status_polls);
  Obs.set_gauge g_polls_avoided (fi t.polls_avoided)
