(** Hub service counters: arbitration, coalescing, and event-bus
    effectiveness, all in modeled units so benches and tests can assert
    on them deterministically. *)

type t = {
  mutable ticks : int;
  mutable requests : int;  (** admitted *)
  mutable responses : int;
  mutable rejected : int;  (** refused by admission control *)
  mutable lock_conflicts : int;  (** mutators deferred behind another session *)
  mutable timeouts : int;  (** sessions reaped idle *)
  mutable sweeps : int;  (** merged readback sweeps executed *)
  mutable coalesced_reads : int;  (** read requests served by those sweeps *)
  mutable frames_read : int;  (** frames actually swept (union) *)
  mutable frames_requested : int;  (** frames the plans asked for (sum) *)
  mutable cable_seconds : float;  (** modeled time of the merged sweeps *)
  mutable serial_cable_seconds : float;
      (** modeled time had every read swept alone *)
  mutable events_published : int;  (** stop events detected *)
  mutable events_delivered : int;  (** per-subscriber deliveries *)
  mutable status_polls : int;  (** status readbacks the hub issued *)
  mutable polls_avoided : int;
      (** subscriber polls replaced by fan-out (deliveries beyond the
          one poll that detected the stop) *)
}

let create () =
  {
    ticks = 0;
    requests = 0;
    responses = 0;
    rejected = 0;
    lock_conflicts = 0;
    timeouts = 0;
    sweeps = 0;
    coalesced_reads = 0;
    frames_read = 0;
    frames_requested = 0;
    cable_seconds = 0.0;
    serial_cable_seconds = 0.0;
    events_published = 0;
    events_delivered = 0;
    status_polls = 0;
    polls_avoided = 0;
  }

(** Modeled cable time the coalescer saved versus serialized sweeps. *)
let saved_seconds t = t.serial_cable_seconds -. t.cable_seconds

let summary t =
  String.concat "\n"
    [
      Printf.sprintf "ticks=%d requests=%d responses=%d rejected=%d" t.ticks
        t.requests t.responses t.rejected;
      Printf.sprintf "lock_conflicts=%d timeouts=%d" t.lock_conflicts
        t.timeouts;
      Printf.sprintf
        "sweeps=%d coalesced_reads=%d frames_read=%d frames_requested=%d"
        t.sweeps t.coalesced_reads t.frames_read t.frames_requested;
      Printf.sprintf
        "cable_seconds=%.4f serial_cable_seconds=%.4f saved_seconds=%.4f"
        t.cable_seconds t.serial_cable_seconds (saved_seconds t);
      Printf.sprintf
        "events_published=%d events_delivered=%d status_polls=%d \
         polls_avoided=%d"
        t.events_published t.events_delivered t.status_polls t.polls_avoided;
    ]

let pp fmt t = Format.pp_print_string fmt (summary t)
