(** One board shard of the debug farm: a deterministic tick-engine hub
    plus the machinery that lets it live on its own OCaml 5 domain.

    The shard's core IS the existing {!Hub} — same scheduler, same
    coalescer, same tick clock — so everything test_hub.ml pins stays
    pinned.  Around it: a bounded inbox fed by the router (admission
    control happens at {!post}: a full inbox refuses the message with
    the current backlog instead of ever blocking the caller), a
    gsid↔lsid translation layer (the router speaks farm-global session
    ids; the hub hands out its own), migration in/out handlers, and a
    per-shard metrics surface ([farm.shard<i>.*]) so N domains never
    race each other on the global [hub.*] gauges.

    Determinism: {!step} is a plain function — tests and benches call it
    inline, single-threaded, and get bit-for-bit the in-process hub
    behavior (the shard clock is the hub tick counter, which advances
    only when work is processed).  {!start} merely runs the same [step]
    in a domain loop; wall time enters nowhere except the optional
    [Heartbeat] message posted by the socket layer. *)

module Board = Zoomie_bitstream.Board
module Controller = Zoomie_debug.Controller
module Device = Zoomie_fabric.Device
module Obs = Zoomie_obs.Obs

type config = {
  inbox_capacity : int;
      (** admission: [Open]/[Request] messages refused beyond this *)
  lease_ticks : int;
      (** board cable-idle ticks before its lease expires (migration) *)
  hub_config : Hub.config;
}

let default_config =
  { inbox_capacity = 128; lease_ticks = 200; hub_config = Hub.default_config }

(* A board slot as the router sees it: placement decisions read the
   Atomics lock-free from the router thread; the shard domain is the
   only writer (except [reserve], router-owned by protocol). *)
type slot = {
  sl_index : int;
  sl_device : string;
  sl_tag : string;  (** design tag; migration compatibility key *)
  sl_info : Controller.info;
  mutable sl_hub_board : int;  (** hub board id; changes after a capture *)
  sl_sessions : int Atomic.t;
  sl_expired : bool Atomic.t;  (** lease expired with sessions aboard *)
  sl_reserved : bool Atomic.t;  (** held by the router as a migration target *)
}

(* One farm session living on this shard. *)
type binding = {
  b_gsid : int;
  b_lsid : int;
  b_slot : int;
  b_respond : string -> unit;  (** wire-encoded response lines out *)
  b_event : string -> unit;  (** wire-encoded event lines out *)
}

type msg =
  | Open of {
      gsid : int;
      slot : int;
      seq : int;
      respond : string -> unit;
      event : string -> unit;
    }
  | Close of { gsid : int }
  | Request of {
      gsid : int;
      seq : int;
      req : Protocol.request;
      t0 : float;  (** post stamp, metrics only — never steers behavior *)
      respond : string -> unit;
    }
  | Migrate_out of {
      slot : int;
      k : (Migrate.capsule, string) result -> unit;
    }
  | Migrate_in of {
      slot : int;
      capsule : Migrate.capsule;
      k : ((Migrate.moved_session * int) list, string) result -> unit;
    }
  | Heartbeat  (** advance the shard clock once despite an empty queue *)

type t = {
  sh_id : int;
  hub : Hub.t;
  slots : slot array;
  config : config;
  (* inbox *)
  mu : Mutex.t;
  cond : Condition.t;
  inbox : msg Queue.t;
  mutable stopping : bool;
  mutable domain : unit Domain.t option;
  (* shard-domain-only state *)
  by_gsid : (int, binding) Hashtbl.t;
  by_lsid : (int, binding) Hashtbl.t;
  pending_t0 : (int * int, float) Hashtbl.t;  (* (lsid, seq) -> post stamp *)
  on_drop : int -> unit;
      (* the shard abandoned this gsid on its own (open refused by the
         hub, session reaped idle) — the router must drop its route *)
  (* metrics *)
  mirror : Stats.mirror;
  m_inbox_depth : Obs.gauge;
  m_queue_depth : Obs.gauge;
  m_sessions : Obs.gauge;
  m_coalescing : Obs.gauge;
  m_latency : Obs.histogram;
  m_busy : Obs.counter;
  m_migrations_out : Obs.counter;
  m_migrations_in : Obs.counter;
}

let id t = t.sh_id

let hub t = t.hub

let create ?(config = default_config) ~id ~boards ~on_drop () =
  let hub = Hub.create ~config:config.hub_config ~publish_globals:false () in
  let slots =
    Array.of_list
      (List.mapi
         (fun i (board, info, tag) ->
           match Hub.add_board hub board ~info with
           | Error msg ->
             invalid_arg
               (Printf.sprintf "shard %d: board %d: %s" id i msg)
           | Ok bid ->
             {
               sl_index = i;
               sl_device = (Board.device board).Device.name;
               sl_tag = tag;
               sl_info = info;
               sl_hub_board = bid;
               sl_sessions = Atomic.make 0;
               sl_expired = Atomic.make false;
               sl_reserved = Atomic.make false;
             })
         boards)
  in
  let prefix = Printf.sprintf "farm.shard%d" id in
  {
    sh_id = id;
    hub;
    slots;
    config;
    mu = Mutex.create ();
    cond = Condition.create ();
    inbox = Queue.create ();
    stopping = false;
    domain = None;
    by_gsid = Hashtbl.create 64;
    by_lsid = Hashtbl.create 64;
    pending_t0 = Hashtbl.create 64;
    on_drop;
    mirror = Stats.mirror prefix;
    m_inbox_depth = Obs.gauge (prefix ^ ".inbox_depth");
    m_queue_depth = Obs.gauge (prefix ^ ".queue_depth");
    m_sessions = Obs.gauge (prefix ^ ".sessions");
    m_coalescing = Obs.gauge (prefix ^ ".coalescing_ratio");
    m_latency = Obs.histogram (prefix ^ ".latency_s");
    m_busy = Obs.counter (prefix ^ ".busy");
    m_migrations_out = Obs.counter (prefix ^ ".migrations_out");
    m_migrations_in = Obs.counter (prefix ^ ".migrations_in");
  }

(* --- router-facing slot view (lock-free reads) ------------------------ *)

let num_slots t = Array.length t.slots

let slot_device t i = t.slots.(i).sl_device

let slot_tag t i = t.slots.(i).sl_tag

let slot_sessions t i = Atomic.get t.slots.(i).sl_sessions

let slot_expired t i = Atomic.get t.slots.(i).sl_expired

let slot_reserved t i = Atomic.get t.slots.(i).sl_reserved

let reserve t i v = Atomic.set t.slots.(i).sl_reserved v

let note_busy t = Obs.incr t.m_busy

(* --- inbox ------------------------------------------------------------ *)

type admission = Accepted | Rejected of int  (** backlog at refusal *)

(** Never blocks.  [Open]/[Request] are admission-controlled; lifecycle
    and migration messages always enqueue (refusing a [Close] would leak
    the session, refusing a migration would wedge the router's state
    machine). *)
let post t msg =
  Mutex.lock t.mu;
  let result =
    match msg with
    | (Open _ | Request _) when Queue.length t.inbox >= t.config.inbox_capacity
      ->
      Rejected (Queue.length t.inbox)
    | _ ->
      Queue.push msg t.inbox;
      Condition.signal t.cond;
      Accepted
  in
  Mutex.unlock t.mu;
  result

let drain_inbox t =
  Mutex.lock t.mu;
  let n = Queue.length t.inbox in
  let msgs = List.of_seq (Queue.to_seq t.inbox) in
  Queue.clear t.inbox;
  Mutex.unlock t.mu;
  Obs.set_gauge t.m_inbox_depth (float_of_int n);
  msgs

(* --- shard-domain engine ---------------------------------------------- *)

let rewire fr gsid = { fr with Protocol.fr_session = gsid }

let deliver_responses t resps =
  List.iter
    (fun (r : Protocol.response Protocol.frame) ->
      match Hashtbl.find_opt t.by_lsid r.Protocol.fr_session with
      | None -> ()  (* the session vanished between submit and response *)
      | Some b ->
        let key = (r.Protocol.fr_session, r.Protocol.fr_seq) in
        (match Hashtbl.find_opt t.pending_t0 key with
        | Some t0 ->
          Hashtbl.remove t.pending_t0 key;
          Obs.observe t.m_latency (Unix.gettimeofday () -. t0)
        | None -> ());
        b.b_respond (Protocol.response_to_wire (rewire r b.b_gsid)))
    resps

let deliver_events t =
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun ev -> b.b_event (Protocol.event_to_wire (rewire ev b.b_gsid)))
        (Hub.events t.hub ~session:b.b_lsid))
    t.by_gsid

(* Tick until the hub's queues are empty, routing responses and events
   out as they appear.  The shard clock advances exactly as much as the
   queued work demands — no work, no ticks. *)
let rec drain_hub t =
  if Hub.queued t.hub > 0 then begin
    deliver_responses t (Hub.tick t.hub);
    deliver_events t;
    drain_hub t
  end

let slot_of t idx = t.slots.(idx)

let remove_binding t b =
  Hashtbl.remove t.by_gsid b.b_gsid;
  Hashtbl.remove t.by_lsid b.b_lsid;
  let sl = slot_of t b.b_slot in
  Atomic.set sl.sl_sessions (max 0 (Atomic.get sl.sl_sessions - 1))

(* Sessions the hub reaped on its own (idle timeout): flush their final
   mailbox (the Session_closed notice), drop the binding, and tell the
   router the route is dead. *)
let sweep_dead t =
  let dead =
    Hashtbl.fold
      (fun _ b acc ->
        match Hub.session_status t.hub b.b_lsid with
        | Some Session.Active -> acc
        | _ -> b :: acc)
      t.by_gsid []
  in
  List.iter
    (fun b ->
      List.iter
        (fun ev -> b.b_event (Protocol.event_to_wire (rewire ev b.b_gsid)))
        (Hub.events t.hub ~session:b.b_lsid);
      remove_binding t b;
      t.on_drop b.b_gsid)
    dead

let bindings_on t slot =
  Hashtbl.fold
    (fun _ b acc -> if b.b_slot = slot then b :: acc else acc)
    t.by_gsid []
  |> List.sort (fun a b -> compare a.b_gsid b.b_gsid)

let wire_response gsid seq payload =
  Protocol.response_to_wire (Protocol.frame gsid seq payload)

let process t msg =
  match msg with
  | Open { gsid; slot; seq; respond; event } -> (
    let sl = slot_of t slot in
    match Hub.open_session t.hub ~board:sl.sl_hub_board with
    | Error msg ->
      respond (wire_response gsid seq (Protocol.Failed msg));
      t.on_drop gsid
    | Ok lsid ->
      let b =
        { b_gsid = gsid; b_lsid = lsid; b_slot = slot; b_respond = respond;
          b_event = event }
      in
      Hashtbl.replace t.by_gsid gsid b;
      Hashtbl.replace t.by_lsid lsid b;
      Atomic.incr sl.sl_sessions;
      respond
        (wire_response gsid seq
           (Protocol.Done (Printf.sprintf "session %d" gsid))))
  | Close { gsid } -> (
    match Hashtbl.find_opt t.by_gsid gsid with
    | None -> ()
    | Some b ->
      Hub.close_session t.hub b.b_lsid;
      remove_binding t b)
  | Request { gsid; seq; req; t0; respond } -> (
    match Hashtbl.find_opt t.by_gsid gsid with
    | None ->
      (* the route raced a drop; never leave the client hanging *)
      respond (wire_response gsid seq (Protocol.Failed "no session"))
    | Some b -> (
      match
        Hub.submit t.hub (Protocol.frame b.b_lsid seq req)
      with
      | Ok () -> Hashtbl.replace t.pending_t0 (b.b_lsid, seq) t0
      | Error _ ->
        (* the hub's own per-board backlog refused it: backpressure,
           same as an inbox refusal *)
        Obs.incr t.m_busy;
        respond
          (wire_response gsid seq
             (Protocol.Busy (Hub.queued_for t.hub (slot_of t b.b_slot).sl_hub_board)))))
  | Migrate_out { slot; k } -> (
    let sl = slot_of t slot in
    let victims = bindings_on t slot in
    (* Exempt them from idle reaping for the duration: the whole reason
       they're migrating is that they've been idle on the cable. *)
    List.iter (fun b -> Hub.set_migrating t.hub b.b_lsid true) victims;
    drain_hub t;
    let sessions =
      List.map (fun b -> (b.b_gsid, b.b_lsid, b.b_respond, b.b_event)) victims
    in
    match
      Migrate.capture t.hub ~board:sl.sl_hub_board ~tag:sl.sl_tag ~sessions
    with
    | Error msg ->
      List.iter (fun b -> Hub.set_migrating t.hub b.b_lsid false) victims;
      k (Error msg)
    | Ok (capsule, freed) ->
      List.iter (fun b -> remove_binding t b) victims;
      (* The freed board rejoins this shard as a zero-session spare with
         a fresh idle clock; a slot whose board can't be re-admitted is
         parked via the reserved flag instead of crashing the shard. *)
      (match Hub.add_board t.hub freed ~info:sl.sl_info with
      | Ok bid -> sl.sl_hub_board <- bid
      | Error _ -> Atomic.set sl.sl_reserved true);
      Atomic.set sl.sl_sessions 0;
      Atomic.set sl.sl_expired false;
      Obs.incr t.m_migrations_out;
      k (Ok capsule))
  | Migrate_in { slot; capsule; k } -> (
    let sl = slot_of t slot in
    match Migrate.plant t.hub ~board:sl.sl_hub_board ~tag:sl.sl_tag capsule with
    | Error msg ->
      Atomic.set sl.sl_reserved false;
      k (Error msg)
    | Ok pairs ->
      List.iter
        (fun ((ms : Migrate.moved_session), lsid) ->
          let b =
            {
              b_gsid = ms.Migrate.ms_gsid;
              b_lsid = lsid;
              b_slot = slot;
              b_respond = ms.Migrate.ms_respond;
              b_event = ms.Migrate.ms_event;
            }
          in
          Hashtbl.replace t.by_gsid b.b_gsid b;
          Hashtbl.replace t.by_lsid b.b_lsid b)
        pairs;
      Atomic.set sl.sl_sessions (List.length pairs);
      Atomic.set sl.sl_reserved false;
      Obs.incr t.m_migrations_in;
      k (Ok pairs))
  | Heartbeat ->
    (* One tick with an empty queue: advances the shard clock so idle
       leases age even on a quiet farm.  Socket-layer only — tests and
       benches never post it, keeping their clocks purely work-driven. *)
    deliver_responses t (Hub.tick t.hub);
    deliver_events t

(* Expire leases: a board that has gone [lease_ticks] without cable
   traffic while sessions are still bound is flagged for the router's
   migration pass.  Shard-clock arithmetic only. *)
let scan_leases t =
  Array.iter
    (fun sl ->
      if not (Atomic.get sl.sl_reserved) then begin
        let sessions = Atomic.get sl.sl_sessions in
        match Hub.board_idle_for t.hub sl.sl_hub_board with
        | Some idle when sessions > 0 && idle > t.config.lease_ticks ->
          Atomic.set sl.sl_expired true
        | Some _ -> Atomic.set sl.sl_expired false
        | None -> ()
      end)
    t.slots

let publish t =
  let st = Hub.stats t.hub in
  Obs.set_gauge t.m_queue_depth (float_of_int (Hub.queued t.hub));
  Obs.set_gauge t.m_sessions (float_of_int (Hashtbl.length t.by_gsid));
  if st.Stats.cable_seconds > 0.0 then
    Obs.set_gauge t.m_coalescing
      (st.Stats.serial_cable_seconds /. st.Stats.cable_seconds);
  Stats.publish_to t.mirror st

(** One deterministic turn: drain the inbox, process every message in
    arrival order, tick the hub dry, sweep reaped sessions, age leases,
    publish metrics.  Returns whether any work was done. *)
let step t =
  let msgs = drain_inbox t in
  let worked = msgs <> [] || Hub.queued t.hub > 0 in
  List.iter (process t) msgs;
  drain_hub t;
  sweep_dead t;
  scan_leases t;
  publish t;
  worked

(* --- domain loop ------------------------------------------------------ *)

let start t =
  match t.domain with
  | Some _ -> ()
  | None ->
    t.domain <-
      Some
        (Domain.spawn (fun () ->
             let running = ref true in
             while !running do
               ignore (step t);
               Mutex.lock t.mu;
               while Queue.is_empty t.inbox && not t.stopping do
                 Condition.wait t.cond t.mu
               done;
               if t.stopping then running := false;
               Mutex.unlock t.mu
             done;
             (* final flush: everything posted before the stop drains *)
             ignore (step t)))

let stop t =
  match t.domain with
  | None -> ()
  | Some d ->
    Mutex.lock t.mu;
    t.stopping <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu;
    Domain.join d;
    t.domain <- None;
    t.stopping <- false
