(** One board shard of the debug farm: the deterministic {!Hub} tick
    engine behind a bounded, never-blocking inbox, with gsid↔lsid
    translation, migration handlers, and a per-shard [farm.shard<i>.*]
    metrics surface.  {!step} runs one turn inline (deterministic — what
    tests and benches call); {!start} runs the same loop on an OCaml 5
    domain. *)

module Board = Zoomie_bitstream.Board
module Controller = Zoomie_debug.Controller

type config = {
  inbox_capacity : int;
      (** admission: [Open]/[Request] messages refused beyond this *)
  lease_ticks : int;
      (** board cable-idle ticks before its lease expires (migration) *)
  hub_config : Hub.config;
}

val default_config : config

type t

type msg =
  | Open of {
      gsid : int;
      slot : int;
      seq : int;
      respond : string -> unit;
      event : string -> unit;
    }
  | Close of { gsid : int }
  | Request of {
      gsid : int;
      seq : int;
      req : Protocol.request;
      t0 : float;  (** post stamp, metrics only — never steers behavior *)
      respond : string -> unit;
    }
  | Migrate_out of {
      slot : int;
      k : (Migrate.capsule, string) result -> unit;
    }
  | Migrate_in of {
      slot : int;
      capsule : Migrate.capsule;
      k : ((Migrate.moved_session * int) list, string) result -> unit;
    }
  | Heartbeat  (** advance the shard clock once despite an empty queue *)

(** [create ~id ~boards ~on_drop ()] builds a shard owning [boards]
    (each with its controller info and design tag).  [on_drop gsid] is
    called when the shard abandons a session on its own (open refused,
    idle-reaped) so the router can drop the route.  Raises
    [Invalid_argument] if a board can't be admitted. *)
val create :
  ?config:config ->
  id:int ->
  boards:(Board.t * Controller.info * string) list ->
  on_drop:(int -> unit) ->
  unit ->
  t

val id : t -> int

(** The shard's hub — read-only use (stats) from the shard's own thread
    of control; tests drive it inline. *)
val hub : t -> Hub.t

(** {2 Router-facing slot view} — lock-free reads for placement. *)

val num_slots : t -> int

val slot_device : t -> int -> string

val slot_tag : t -> int -> string

val slot_sessions : t -> int -> int

(** Lease expired with sessions still aboard: a migration candidate. *)
val slot_expired : t -> int -> bool

val slot_reserved : t -> int -> bool

(** Router-owned: hold/release a slot as a migration target. *)
val reserve : t -> int -> bool -> unit

(** Count a router-side admission refusal on this shard's metrics. *)
val note_busy : t -> unit

(** {2 Inbox} *)

type admission = Accepted | Rejected of int  (** backlog at refusal *)

(** Never blocks.  [Open]/[Request] are refused with the backlog size
    when the inbox is at capacity; lifecycle and migration messages
    always enqueue. *)
val post : t -> msg -> admission

(** One deterministic turn: drain the inbox, process messages in arrival
    order, tick the hub dry (routing responses and events out), sweep
    reaped sessions, age leases, publish metrics.  Returns whether any
    work was done. *)
val step : t -> bool

(** Run {!step} on a dedicated domain until {!stop}. *)
val start : t -> unit

(** Signal the domain loop, drain what was already posted, join. *)
val stop : t -> unit
