(** The farm front-end: owns the fleet of shards, assigns farm-global
    session ids, routes request frames to the right shard, refuses work
    with [Busy] when a shard's inbox refuses admission, and runs the
    lease-expiry → hot-migration state machine.

    Thread model: the router's table is mutex-protected and every entry
    point is safe to call from the socket thread while shard domains
    run; shard slot state is read lock-free through Atomics.  The same
    code runs single-threaded for tests and deterministic benches via
    {!step}/{!settle} — shard callbacks then execute synchronously
    inside the step, so a migration completes in a bounded number of
    steps with no wall-clock dependence. *)

module Board = Zoomie_bitstream.Board
module Controller = Zoomie_debug.Controller
module Obs = Zoomie_obs.Obs

(* How many backlog units a client should wait out before retrying a
   session that's mid-migration.  Any small constant works — the client
   backoff scales with it. *)
let migration_retry_after = 8

type route = {
  mutable r_shard : int;
  mutable r_slot : int;
  mutable r_inflight : bool;  (** mid-migration: answer [Busy], don't route *)
}

type t = {
  mutable shards : Shard.t array;
  mu : Mutex.t;
  table : (int, route) Hashtbl.t;  (* gsid -> route *)
  mutable next_gsid : int;
  mutable migrating : bool;  (* at most one migration in flight, farm-wide *)
  m_opened : Obs.counter;
  m_migrations : Obs.counter;
  m_busy : Obs.counter;
}

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(** [create ~fleet ()]: one shard per inner list of
    [(board, info, design-tag)] triples. *)
let create ?config ~fleet () =
  let t =
    {
      shards = [||];
      mu = Mutex.create ();
      table = Hashtbl.create 256;
      next_gsid = 0;
      migrating = false;
      m_opened = Obs.counter "farm.sessions_opened";
      m_migrations = Obs.counter "farm.migrations";
      m_busy = Obs.counter "farm.busy_refusals";
    }
  in
  let on_drop gsid = with_lock t (fun () -> Hashtbl.remove t.table gsid) in
  t.shards <-
    Array.of_list
      (List.mapi
         (fun i boards -> Shard.create ?config ~id:i ~boards ~on_drop ())
         fleet);
  t

let shards t = t.shards

let session_count t = with_lock t (fun () -> Hashtbl.length t.table)

let respond_with respond ~session ~seq payload =
  respond (Protocol.response_to_wire (Protocol.frame session seq payload))

(* Least-loaded placement across every shard's compatible, unreserved
   slots.  [spec] is a device name or "any". *)
let pick_slot t spec =
  let best = ref None in
  Array.iteri
    (fun si sh ->
      for k = 0 to Shard.num_slots sh - 1 do
        if
          (not (Shard.slot_reserved sh k))
          && (spec = "any" || Shard.slot_device sh k = spec)
        then begin
          let load = Shard.slot_sessions sh k in
          match !best with
          | Some (_, _, l) when l <= load -> ()
          | _ -> best := Some (si, k, load)
        end
      done)
    t.shards;
  !best

(** Admit a session: pick the least-loaded compatible board, assign a
    gsid, route an [Open] to its shard.  Every outcome is answered on
    [respond] (success asynchronously by the shard, with the gsid in the
    [Done] text).  Returns the gsid when admitted into the table, so the
    connection can track what to close on disconnect. *)
let open_session t ~session ~seq ~spec ~respond ~event =
  let placed =
    with_lock t (fun () ->
        match pick_slot t spec with
        | None -> None
        | Some (si, k, _) ->
          let gsid = t.next_gsid in
          t.next_gsid <- gsid + 1;
          Hashtbl.replace t.table gsid
            { r_shard = si; r_slot = k; r_inflight = false };
          Some (gsid, si, k))
  in
  match placed with
  | None ->
    respond_with respond ~session ~seq
      (Protocol.Failed (Printf.sprintf "no compatible board for %S" spec));
    None
  | Some (gsid, si, k) -> (
    let sh = t.shards.(si) in
    match Shard.post sh (Shard.Open { gsid; slot = k; seq; respond; event }) with
    | Shard.Accepted ->
      Obs.incr t.m_opened;
      Some gsid
    | Shard.Rejected backlog ->
      with_lock t (fun () -> Hashtbl.remove t.table gsid);
      Shard.note_busy sh;
      Obs.incr t.m_busy;
      respond_with respond ~session ~seq (Protocol.Busy backlog);
      None)

(** Route one request frame.  Unknown session → [Failed]; session
    mid-migration or shard inbox full → [Busy] (the router itself never
    blocks on a shard). *)
let dispatch t (fr : Protocol.request Protocol.frame) ~respond =
  let gsid = fr.Protocol.fr_session in
  let seq = fr.Protocol.fr_seq in
  let r =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.table gsid with
        | None -> None
        | Some r -> Some (r.r_shard, r.r_inflight))
  in
  match r with
  | None ->
    respond_with respond ~session:gsid ~seq
      (Protocol.Failed (Printf.sprintf "no session %d" gsid))
  | Some (_, true) ->
    Obs.incr t.m_busy;
    respond_with respond ~session:gsid ~seq
      (Protocol.Busy migration_retry_after)
  | Some (si, false) -> (
    let sh = t.shards.(si) in
    match
      Shard.post sh
        (Shard.Request
           {
             gsid;
             seq;
             req = fr.Protocol.fr_payload;
             t0 = Unix.gettimeofday ();
             respond;
           })
    with
    | Shard.Accepted -> ()
    | Shard.Rejected backlog ->
      Shard.note_busy sh;
      Obs.incr t.m_busy;
      respond_with respond ~session:gsid ~seq (Protocol.Busy backlog))

(** Drop a session (client disconnected).  Quiet on both ends. *)
let close_session t gsid =
  let r =
    with_lock t (fun () ->
        let r = Hashtbl.find_opt t.table gsid in
        Hashtbl.remove t.table gsid;
        r)
  in
  match r with
  | None -> ()
  | Some r -> ignore (Shard.post t.shards.(r.r_shard) (Shard.Close { gsid }))

(* --- migration state machine ------------------------------------------ *)

(* Routes bound to one slot, for marking in-flight / re-targeting. *)
let routes_on t si k =
  Hashtbl.fold
    (fun gsid r acc ->
      if r.r_shard = si && r.r_slot = k then (gsid, r) :: acc else acc)
    t.table []

(** One housekeeping pass: if no migration is in flight, look for an
    expired slot with sessions aboard and a compatible zero-session
    spare, and kick off the move.  The completion callbacks run on the
    shard domains (or synchronously under {!step} in inline mode). *)
let house_keep t =
  let plan =
    with_lock t (fun () ->
        if t.migrating then None
        else begin
          (* source: expired with sessions; target: compatible empty spare *)
          let src = ref None and dst = ref None in
          Array.iteri
            (fun si sh ->
              for k = 0 to Shard.num_slots sh - 1 do
                if
                  !src = None
                  && Shard.slot_expired sh k
                  && Shard.slot_sessions sh k > 0
                  && not (Shard.slot_reserved sh k)
                then src := Some (si, k)
              done)
            t.shards;
          (match !src with
          | None -> ()
          | Some (si, k) ->
            let device = Shard.slot_device t.shards.(si) k in
            let tag = Shard.slot_tag t.shards.(si) k in
            Array.iteri
              (fun tj sh ->
                for m = 0 to Shard.num_slots sh - 1 do
                  if
                    !dst = None
                    && (tj <> si || m <> k)
                    && Shard.slot_device sh m = device
                    && Shard.slot_tag sh m = tag
                    && Shard.slot_sessions sh m = 0
                    && (not (Shard.slot_reserved sh m))
                    && not (Shard.slot_expired sh m)
                  then dst := Some (tj, m)
                done)
              t.shards;
            ());
          match (!src, !dst) with
          | Some (si, k), Some (tj, m) ->
            t.migrating <- true;
            Shard.reserve t.shards.(tj) m true;
            List.iter (fun (_, r) -> r.r_inflight <- true) (routes_on t si k);
            Some ((si, k), (tj, m))
          | _ -> None
        end)
  in
  match plan with
  | None -> ()
  | Some ((si, k), (tj, m)) ->
    let abort () =
      with_lock t (fun () ->
          List.iter (fun (_, r) -> r.r_inflight <- false) (routes_on t si k);
          Shard.reserve t.shards.(tj) m false;
          t.migrating <- false)
    in
    let on_planted result =
      with_lock t (fun () ->
          (match result with
          | Ok pairs ->
            List.iter
              (fun ((ms : Migrate.moved_session), _lsid) ->
                match Hashtbl.find_opt t.table ms.Migrate.ms_gsid with
                | Some r ->
                  r.r_shard <- tj;
                  r.r_slot <- m;
                  r.r_inflight <- false
                | None -> ())
              pairs;
            Obs.incr t.m_migrations
          | Error _ ->
            (* exported but not planted: those sessions are gone — the
               k2 wrapper already told each client; drop the routes *)
            List.iter
              (fun (gsid, _) -> Hashtbl.remove t.table gsid)
              (routes_on t si k));
          t.migrating <- false)
    in
    let on_captured result =
      match result with
      | Error _ -> abort ()
      | Ok capsule -> (
        (* deliver the bad news per session if planting fails *)
        let k2 result =
          (match result with
          | Error msg ->
            List.iter
              (fun (ms : Migrate.moved_session) ->
                ms.Migrate.ms_event
                  (Protocol.event_to_wire
                     (Protocol.frame ms.Migrate.ms_gsid 0
                        (Protocol.Session_closed ("migration failed: " ^ msg)))))
              capsule.Migrate.c_sessions
          | Ok _ -> ());
          on_planted result
        in
        match
          Shard.post t.shards.(tj)
            (Shard.Migrate_in { slot = m; capsule; k = k2 })
        with
        | Shard.Accepted -> ()
        | Shard.Rejected _ -> assert false (* migration msgs always enqueue *))
    in
    (match
       Shard.post t.shards.(si)
         (Shard.Migrate_out { slot = k; k = on_captured })
     with
    | Shard.Accepted -> ()
    | Shard.Rejected _ -> assert false)

(* --- drivers ---------------------------------------------------------- *)

(** One inline turn over the whole farm: step every shard, then run a
    housekeeping pass.  Deterministic — this is what tests and benches
    drive instead of {!start}. *)
let step t =
  let worked =
    Array.fold_left (fun w sh -> if Shard.step sh then true else w) false
      t.shards
  in
  house_keep t;
  worked

(** Step until quiescent (no shard did work and no migration pending). *)
let settle ?(max_rounds = 10_000) t =
  let rec go n =
    if n > 0 && (step t || with_lock t (fun () -> t.migrating)) then go (n - 1)
  in
  go max_rounds

let start t = Array.iter Shard.start t.shards

let stop t = Array.iter Shard.stop t.shards
