(** The socket layer: a single-threaded select loop speaking
    length-prefixed zh1 frames in front of a {!Router}, plus a blocking
    {!Client}.  Unparsable frames — protocol version mismatches
    included — are answered with a descriptive [Failed] on session 0;
    the connection stays open. *)

module P = Protocol

(** Parse ["host:port"] ([""] or ["*"] host = all interfaces;
    ["localhost"], dotted quads, and resolvable names accepted). *)
val parse_addr : string -> (Unix.sockaddr, string) result

type t

(** Bind, listen, and run the select loop on its own thread.  TCP
    ([ADDR_INET]) and Unix-domain ([ADDR_UNIX]) addresses both work; a
    stale Unix socket file is unlinked before bind and the live one on
    {!shutdown}.  Start the shard domains separately ({!Router.start}).
    [heartbeat] posts a clock-advancing tick to every shard at that wall
    interval — leave it off for deterministic runs. *)
val serve : ?heartbeat:float -> router:Router.t -> Unix.sockaddr -> t

(** The actually-bound address (resolves port 0 to the kernel's pick). *)
val bound_addr : t -> Unix.sockaddr

(** Stop accepting, flush pending output, close every fd, join. *)
val shutdown : t -> unit

module Client : sig
  type t

  val connect : Unix.sockaddr -> t

  val close : t -> unit

  (** Admit a session on a board matching [spec] (default ["any"]); the
      gsid becomes this client's session id for every later call. *)
  val open_session : ?spec:string -> t -> (int, string) result

  (** Send one request, block for its response.  [Busy] answers retry
      transparently with linear backoff unless [retry:false]. *)
  val call :
    ?retry:bool ->
    t ->
    P.request ->
    (P.response P.frame, string) result

  (** Drained stash of events received so far, oldest first. *)
  val events : t -> P.event P.frame list

  (** How many [Busy] refusals this client has retried through. *)
  val busy_retries : t -> int
end
