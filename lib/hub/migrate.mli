(** Hot session migration: lift every session off a cable-idle board via
    a full-fabric snapshot and rebuild them on a compatible spare.  The
    snapshot covers the debug controller's own registers (breakpoints,
    latched stop cause, cycle counter), so a migrated session's
    transcript is bit-for-bit the unmigrated one.  Compatibility is
    device name + design tag. *)

module Board = Zoomie_bitstream.Board
module Readback = Zoomie_debug.Readback

type moved_session = {
  ms_gsid : int;  (** farm-global session id — stable across the move *)
  ms_mut_path : string option;  (** attachment to rebuild, if any *)
  ms_subscribed : bool;
  ms_respond : string -> unit;  (** the session's wire sinks travel too *)
  ms_event : string -> unit;
}

type capsule = {
  c_device : string;
  c_tag : string;  (** design tag; restore targets must match exactly *)
  c_snapshot : Readback.snapshot;
  c_sessions : moved_session list;
}

(** Full-fabric snapshot of one board, every SLR merged into one plan. *)
val snapshot_board : Board.t -> Readback.snapshot

(** Capture [board] out of [hub]: export each [(gsid, lsid, respond,
    event)] session (queued work already quiesced by the caller),
    snapshot the fabric, release the board.  Returns the capsule and
    the freed board for re-admission as a spare. *)
val capture :
  Hub.t ->
  board:int ->
  tag:string ->
  sessions:(int * int * (string -> unit) * (string -> unit)) list ->
  (capsule * Board.t, string) result

(** Rebuild a capsule on a zero-session spare of [hub]: restore the
    snapshot, re-import every session (touched with the target hub's
    clock).  Returns each moved session paired with its new local id. *)
val plant :
  Hub.t ->
  board:int ->
  tag:string ->
  capsule ->
  ((moved_session * int) list, string) result
