(** The farm front-end: owns the shard fleet, assigns farm-global
    session ids (gsids), routes frames, answers [Busy] when a shard's
    inbox refuses admission (never blocks on a shard), and runs the
    lease-expiry → hot-migration state machine.  Safe to call from the
    socket thread while shard domains run; equally drivable inline and
    single-threaded via {!step}/{!settle} for deterministic tests. *)

module Board = Zoomie_bitstream.Board
module Controller = Zoomie_debug.Controller

type t

(** [create ~fleet ()]: one shard per inner list of
    [(board, info, design-tag)] triples. *)
val create :
  ?config:Shard.config ->
  fleet:(Board.t * Controller.info * string) list list ->
  unit ->
  t

val shards : t -> Shard.t array

(** Sessions currently routed. *)
val session_count : t -> int

(** Admit a session on a board matching [spec] (device name or ["any"]),
    least-loaded first.  Every outcome is answered on [respond]
    (admission success arrives asynchronously from the shard, carrying
    the gsid in the [Done] text).  Returns the gsid when one was
    assigned, so the connection can close it on disconnect. *)
val open_session :
  t ->
  session:int ->
  seq:int ->
  spec:string ->
  respond:(string -> unit) ->
  event:(string -> unit) ->
  int option

(** Route one request frame.  Unknown session → [Failed]; mid-migration
    or inbox-full → [Busy]. *)
val dispatch :
  t -> Protocol.request Protocol.frame -> respond:(string -> unit) -> unit

(** Drop a session (client disconnected); quiet on both ends. *)
val close_session : t -> int -> unit

(** One housekeeping pass of the migration state machine.  The socket
    loop calls this periodically; {!step} calls it inline. *)
val house_keep : t -> unit

(** One inline deterministic turn: step every shard, then housekeep. *)
val step : t -> bool

(** Step until quiescent (no work anywhere, no migration pending). *)
val settle : ?max_rounds:int -> t -> unit

(** Spawn every shard's domain loop / stop and join them all. *)
val start : t -> unit

val stop : t -> unit
