(** Per-board arbitration: a bounded FIFO of pending requests and the
    grant policy one hub tick applies to it — reader/writer semantics on
    the cable.  Control and read-class ops share the board within a
    tick; exactly one mutator gets it exclusively, the rest wait in
    FIFO order.  A mutator deferred behind another session's grant is a
    lock conflict. *)

type op_class = Control_op | Read_op | Mutate_op

(** Which lock a request needs.  Control ops touch only hub state;
    read-class commands issue readback sweeps; everything that changes
    board state is a mutator. *)
val classify : Protocol.request -> op_class

type pending = {
  p_session : int;
  p_seq : int;
  p_request : Protocol.request;
}

type t

val create : max_queue:int -> t

(** Requests currently queued. *)
val length : t -> int

(** Admission control: [Error] when the board's backlog is full. *)
val submit : t -> pending -> (unit, string) result

(** What one tick grants. *)
type grant = {
  g_control : pending list;
  g_reads : pending list;  (** coalescable: share the board within a tick *)
  g_mutate : pending list;
      (** the exclusive-lock holder's contiguous mutator batch (FIFO):
          one session holds the write lock per tick, and its queued run
          of mutators drains together, up to the first mutator from
          another session *)
  g_conflicts : int;
      (** mutators deferred behind another session's exclusive grant *)
}

(** Drain this tick's grant from the queue (FIFO). *)
val schedule : t -> grant

(** Remove (and return, FIFO) everything a vanished session had queued. *)
val drop_session : t -> int -> pending list
