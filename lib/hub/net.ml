(** The socket layer: a single-threaded select loop speaking
    length-prefixed zh1 frames ({!Framing}) in front of a {!Router}, and
    a small blocking {!Client} for drivers, benches, and tests.

    The loop owns every fd.  Shard domains never touch a socket: their
    respond/event sinks append to a per-connection outbox (mutex-guarded
    bytes) and poke a wake pipe so the loop flushes promptly.  A frame
    that fails to parse — including a protocol version mismatch — is
    answered with a descriptive [Failed] on session 0 and the connection
    stays open: the peer learns which end speaks which version instead
    of watching the socket drop. *)

module P = Protocol

let ignore_sigpipe () =
  (* a peer closing mid-write must surface as EPIPE, not kill the farm *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* --- address parsing -------------------------------------------------- *)

(** Parse ["host:port"] ([""] or ["*"] host = all interfaces). *)
let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (want HOST:PORT)" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | None -> Error (Printf.sprintf "bad port %S" port)
    | Some port -> (
      match host with
      | "" | "*" -> Ok (Unix.ADDR_INET (Unix.inet_addr_any, port))
      | "localhost" -> Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      | host -> (
        match Unix.inet_addr_of_string host with
        | addr -> Ok (Unix.ADDR_INET (addr, port))
        | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
            Error (Printf.sprintf "cannot resolve %S" host)
          | { Unix.h_addr_list; _ } ->
            Ok (Unix.ADDR_INET (h_addr_list.(0), port))))))

(* --- server ----------------------------------------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  c_dec : Framing.decoder;
  c_mu : Mutex.t;
  mutable c_out : string;  (** encoded frames awaiting write *)
  mutable c_gsids : int list;  (** sessions opened on this connection *)
  mutable c_dead : bool;
}

type t = {
  s_fd : Unix.file_descr;
  s_addr : Unix.sockaddr;  (** actually bound (resolves port 0) *)
  s_router : Router.t;
  mutable s_conns : conn list;
  s_stop : bool Atomic.t;
  s_wake_r : Unix.file_descr;
  s_wake_w : Unix.file_descr;
  s_heartbeat : float option;
  mutable s_thread : Thread.t option;
}

let bound_addr t = t.s_addr

let wake t =
  try ignore (Unix.write t.s_wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

(* Sinks run on shard domains: buffer under the connection mutex, then
   poke the loop.  Frames for a connection that died are dropped. *)
let enqueue t conn line =
  Mutex.lock conn.c_mu;
  if not conn.c_dead then
    conn.c_out <- conn.c_out ^ Bytes.to_string (Framing.encode line);
  Mutex.unlock conn.c_mu;
  wake t

let close_conn t conn =
  Mutex.lock conn.c_mu;
  conn.c_dead <- true;
  Mutex.unlock conn.c_mu;
  List.iter (Router.close_session t.s_router) conn.c_gsids;
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  t.s_conns <- List.filter (fun c -> c != conn) t.s_conns

let handle_frame t conn line =
  let respond = enqueue t conn in
  match P.request_of_wire line with
  | Error msg ->
    (* descriptive refusal (version mismatch and all) — stay connected *)
    respond (P.response_to_wire (P.frame 0 0 (P.Failed msg)))
  | Ok { P.fr_session; fr_seq; fr_payload = P.Open_session spec } -> (
    match
      Router.open_session t.s_router ~session:fr_session ~seq:fr_seq ~spec
        ~respond ~event:respond
    with
    | Some gsid -> conn.c_gsids <- gsid :: conn.c_gsids
    | None -> ())
  | Ok fr -> Router.dispatch t.s_router fr ~respond

let read_conn t conn =
  let buf = Bytes.create 8192 in
  match Unix.read conn.c_fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t conn
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    close_conn t conn
  | n -> (
    Framing.feed conn.c_dec buf ~off:0 ~len:n;
    try
      let rec drain () =
        match Framing.next conn.c_dec with
        | Some line ->
          handle_frame t conn line;
          drain ()
        | None -> ()
      in
      drain ()
    with Framing.Frame_error _ -> close_conn t conn)

let flush_conn t conn =
  Mutex.lock conn.c_mu;
  let out = conn.c_out in
  Mutex.unlock conn.c_mu;
  if out <> "" then begin
    match Unix.write_substring conn.c_fd out 0 (String.length out) with
    | written ->
      Mutex.lock conn.c_mu;
      conn.c_out <-
        String.sub conn.c_out written (String.length conn.c_out - written);
      Mutex.unlock conn.c_mu
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t conn
  end

let has_pending conn =
  Mutex.lock conn.c_mu;
  let p = conn.c_out <> "" in
  Mutex.unlock conn.c_mu;
  p

let loop t =
  let last_beat = ref (Unix.gettimeofday ()) in
  while not (Atomic.get t.s_stop) do
    let rds = t.s_fd :: t.s_wake_r :: List.map (fun c -> c.c_fd) t.s_conns in
    let wrs =
      List.filter_map
        (fun c -> if has_pending c then Some c.c_fd else None)
        t.s_conns
    in
    let readable, writable, _ =
      try Unix.select rds wrs [] 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* drain the wake pipe *)
    if List.mem t.s_wake_r readable then begin
      let b = Bytes.create 64 in
      try ignore (Unix.read t.s_wake_r b 0 64) with Unix.Unix_error _ -> ()
    end;
    if List.mem t.s_fd readable then begin
      match Unix.accept t.s_fd with
      | fd, _ ->
        t.s_conns <-
          {
            c_fd = fd;
            c_dec = Framing.decoder ();
            c_mu = Mutex.create ();
            c_out = "";
            c_gsids = [];
            c_dead = false;
          }
          :: t.s_conns
      | exception Unix.Unix_error _ -> ()
    end;
    List.iter
      (fun conn -> if List.mem conn.c_fd readable then read_conn t conn)
      t.s_conns;
    List.iter
      (fun conn -> if List.mem conn.c_fd writable then flush_conn t conn)
      t.s_conns;
    Router.house_keep t.s_router;
    match t.s_heartbeat with
    | Some dt when Unix.gettimeofday () -. !last_beat > dt ->
      last_beat := Unix.gettimeofday ();
      Array.iter
        (fun sh -> ignore (Shard.post sh Shard.Heartbeat))
        (Router.shards t.s_router)
    | _ -> ()
  done;
  (* final flush so responses already produced reach their clients *)
  List.iter (fun conn -> flush_conn t conn) t.s_conns

(** Bind, listen, and run the select loop on its own thread.  The shard
    domains must be started separately ({!Router.start}).  [heartbeat]
    posts a clock-advancing tick to every shard at that wall interval —
    leave it off for deterministic runs. *)
let serve ?heartbeat ~router addr =
  ignore_sigpipe ();
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_UNIX path ->
      (* a stale socket file from a crashed server would make bind fail *)
      (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd addr;
  Unix.listen fd 64;
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      s_fd = fd;
      s_addr = Unix.getsockname fd;
      s_router = router;
      s_conns = [];
      s_stop = Atomic.make false;
      s_wake_r = wake_r;
      s_wake_w = wake_w;
      s_heartbeat = heartbeat;
      s_thread = None;
    }
  in
  t.s_thread <- Some (Thread.create loop t);
  t

(** Stop accepting, flush, close every fd, join the loop thread. *)
let shutdown t =
  Atomic.set t.s_stop true;
  wake t;
  Option.iter Thread.join t.s_thread;
  t.s_thread <- None;
  List.iter (fun conn -> close_conn t conn) t.s_conns;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.s_fd; t.s_wake_r; t.s_wake_w ];
  match t.s_addr with
  | Unix.ADDR_UNIX path when path <> "" -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()

(* --- blocking client -------------------------------------------------- *)

module Client = struct
  type t = {
    fd : Unix.file_descr;
    mutable session : int;  (** gsid once opened; 0 before *)
    mutable seq : int;
    mutable events : P.event P.frame list;  (** stash, newest first *)
    mutable busy_retries : int;
  }

  let connect addr =
    ignore_sigpipe ();
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.connect fd addr;
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
    | _ -> ());
    { fd; session = 0; seq = 0; events = []; busy_retries = 0 }

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

  (** Drained event stash, oldest first. *)
  let events t =
    let evs = List.rev t.events in
    t.events <- [];
    evs

  let busy_retries t = t.busy_retries

  (* Read frames until the response with [seq] arrives; events along the
     way are stashed. *)
  let rec read_until t ~seq =
    match Framing.read_frame t.fd with
    | None -> Error "connection closed"
    | Some line -> (
      match P.response_of_wire line with
      | Ok r when r.P.fr_seq = seq -> Ok r
      | Ok _ -> read_until t ~seq (* stale response from a retried seq *)
      | Error _ -> (
        match P.event_of_wire line with
        | Ok ev ->
          t.events <- ev :: t.events;
          read_until t ~seq
        | Error msg -> Error ("unparsable frame: " ^ msg)))

  (** Send one request and block for its response.  [Busy] answers are
      retried transparently with linear backoff unless [retry:false], in
      which case the [Busy] frame is returned as-is. *)
  let call ?(retry = true) t req =
    t.seq <- t.seq + 1;
    let seq = t.seq in
    let rec go () =
      Framing.write_frame t.fd
        (P.request_to_wire (P.frame t.session seq req));
      match read_until t ~seq with
      | Ok { P.fr_payload = P.Busy n; _ } when retry ->
        t.busy_retries <- t.busy_retries + 1;
        (* back off proportionally to the reported backlog *)
        Thread.delay (0.0002 *. float_of_int (1 + n));
        go ()
      | r -> r
    in
    go ()

  (** Admit a session on a board matching [spec]; the gsid becomes this
      client's session id for every later call. *)
  let open_session ?(spec = "any") t =
    match call t (P.Open_session spec) with
    | Error _ as e -> e
    | Ok { P.fr_payload = P.Done text; _ } -> (
      match String.split_on_char ' ' text with
      | [ "session"; g ] -> (
        match int_of_string_opt g with
        | Some gsid ->
          t.session <- gsid;
          Ok gsid
        | None -> Error ("bad open response: " ^ text))
      | _ -> Error ("bad open response: " ^ text))
    | Ok { P.fr_payload = P.Failed msg; _ } -> Error msg
    | Ok { P.fr_payload = P.Busy _; _ } -> Error "busy"
    | Ok { P.fr_payload = P.Values _; _ } -> Error "bad open response"
end
