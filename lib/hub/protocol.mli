(** The hub wire protocol: versioned request/response/event framing
    around the {!Zoomie_debug.Repl} command set plus session lifecycle.

    One frame per line: [zh<version> <session> <seq> <verb> ...].
    Commands travel as their REPL line syntax, register values as
    [name=<binary>] pairs, free text backslash-escaped so multi-line
    transcripts survive the framing.  Parsers refuse frames tagged with
    an unknown version instead of guessing. *)

open Zoomie_rtl
module Repl = Zoomie_debug.Repl

(** Protocol version emitted and accepted by this build. *)
val version : int

type request =
  | Open_session of string
      (** farm front-ends: admit a session on a board matching this device
          spec (a device name, or ["any"]).  Routed by the farm router,
          never answered by a hub directly. *)
  | Attach of string  (** attach to the wrapped MUT at this path *)
  | Detach
  | Subscribe  (** join the board's stop-event fan-out *)
  | Unsubscribe
  | Read_registers of string list
      (** original (unprefixed) MUT register names — the coalescable read *)
  | Command of Repl.command  (** any REPL command, arbitrated by class *)
  | Stats
      (** pull the hub's service counters and a metrics-registry snapshot
          (a control op: answered from hub state, no cable traffic) *)

type response =
  | Done of string  (** command transcript text *)
  | Values of (string * Bits.t) list  (** demultiplexed register values *)
  | Failed of string
  | Busy of int
      (** backpressure: the shard's inbox refused admission; retry after
          roughly this many requests' worth of backlog has drained *)

type event =
  | Stopped of { at_cycle : int; flags : string list; fired : string list }
      (** a breakpoint latched: stop-cause flags + fired assertion names *)
  | Session_closed of string  (** the hub dropped this session (reason) *)

(** Session-addressed, sequence-numbered envelope. *)
type 'a frame = { fr_session : int; fr_seq : int; fr_payload : 'a }

val frame : int -> int -> 'a -> 'a frame

val request_to_wire : request frame -> string

val request_of_wire : string -> (request frame, string) result

val response_to_wire : response frame -> string

val response_of_wire : string -> (response frame, string) result

val event_to_wire : event frame -> string

val event_of_wire : string -> (event frame, string) result
