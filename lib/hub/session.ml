(** One hub client's slot: its board binding, attached debug session,
    subscription flag, idle clock, and pending-event mailbox.

    Sessions never touch the cable themselves — the scheduler decides
    when their requests run.  Time here is hub ticks, not seconds: the
    hub owns the clock so timeout policy is deterministic and testable. *)

module Host = Zoomie_debug.Host
module Timeline = Zoomie_debug.Timeline

type status = Active | Timed_out | Closed

type t = {
  id : int;
  board_id : int;  (** index of the board this session is bound to *)
  mutable host : Host.t option;  (** present once attached *)
  mutable tl : Timeline.session option;
      (** the recorder-capable front-end around [host]; created lazily on
          the first command after an attach, dropped with the attachment
          (a recording is per-attachment state) *)
  mutable subscribed : bool;
  mutable last_active : int;  (** hub tick of the last submitted request *)
  mutable status : status;
  mutable migrating : bool;
      (** mid-flight to another board: exempt from idle reaping so the
          shard clock can't expire a session the farm is busy moving *)
  mutable mailbox : Protocol.event Protocol.frame list;  (** newest first *)
}

let create ~id ~board_id ~now =
  {
    id;
    board_id;
    host = None;
    tl = None;
    subscribed = false;
    last_active = now;
    status = Active;
    migrating = false;
    mailbox = [];
  }

let is_active t = t.status = Active

let touch t ~now = t.last_active <- now

let idle_for t ~now = now - t.last_active

(** Queue one event; the client collects it on its next poll. *)
let deliver t ~seq event =
  t.mailbox <-
    { Protocol.fr_session = t.id; fr_seq = seq; fr_payload = event } :: t.mailbox

(** Pending events in delivery order; empties the mailbox. *)
let drain_mailbox t =
  let events = List.rev t.mailbox in
  t.mailbox <- [];
  events

(** Mark the session gone (timed out or closed); drops the attachment and
    subscription so it can never be granted board traffic again. *)
let close t status =
  t.status <- status;
  t.host <- None;
  t.tl <- None;
  t.subscribed <- false
