(** Length-prefixed framing for zh1 lines on a byte stream: each
    protocol line travels behind a 4-byte big-endian length prefix.
    Blocking [write_frame]/[read_frame] for clients; an incremental
    {!decoder} for the server's select loop. *)

exception Frame_error of string

(** Hard per-frame size cap; larger frames raise {!Frame_error}. *)
val max_frame : int

(** The on-wire bytes (prefix + payload) for one frame. *)
val encode : string -> bytes

(** Write [bytes] fully (loops over short writes). *)
val write_all : Unix.file_descr -> bytes -> unit

val write_frame : Unix.file_descr -> string -> unit

(** Blocking read of one frame; [None] on clean EOF at a frame boundary.
    EOF mid-frame, or a bad length, raises {!Frame_error}. *)
val read_frame : Unix.file_descr -> string option

type decoder

val decoder : unit -> decoder

(** Append [len] bytes of received data starting at [off]. *)
val feed : decoder -> bytes -> off:int -> len:int -> unit

(** The next complete frame, if one has fully arrived. *)
val next : decoder -> string option
