(** The multi-session debug server: N clients multiplexed onto a pool of
    leased boards, advanced in deterministic ticks.

    Per tick, per board: session-lifecycle ops run first, then every
    queued read shares the board — register reads merged into one
    coalesced sweep — then exactly one mutating command holds it
    exclusively.  After a mutator, one status readback serves all
    subscribers: a latched stop fans out as a {!Protocol.Stopped} event.
    Idle sessions are reaped with a [Session_closed] notice. *)

module Board = Zoomie_bitstream.Board
module Controller = Zoomie_debug.Controller

type config = {
  max_sessions_per_board : int;  (** admission: concurrent sessions *)
  max_queue : int;  (** admission: queued requests per board *)
  session_timeout_ticks : int;  (** idle ticks before a session is reaped *)
}

val default_config : config

(** The name the hub writes on {!Board.acquire_lease}. *)
val lease_owner : string

type t

val create : ?config:config -> unit -> t

val stats : t -> Stats.t

(** Put a board under hub ownership; returns its board id.  Fails when
    another driver holds its lease or it has no configured design.  The
    per-design site map is built once here and shared by every session
    that attaches. *)
val add_board : t -> Board.t -> info:Controller.info -> (int, string) result

(** Admit a new session bound to board [board]; returns the session id.
    [Error] when the board is unknown or at its session limit. *)
val open_session : t -> board:int -> (int, string) result

val session_status : t -> int -> Session.status option

(** Queue one request.  [Error] when the session is unknown or gone, or
    when the board's backlog refuses admission (the request is counted
    as rejected, not queued). *)
val submit : t -> Protocol.request Protocol.frame -> (unit, string) result

(** Advance the hub one tick; returns the responses produced, in grant
    order. *)
val tick : t -> Protocol.response Protocol.frame list

(** Pending events for one session, in delivery order (empties its
    mailbox).  Works on closed sessions — the [Session_closed] notice
    stays collectable. *)
val events : t -> session:int -> Protocol.event Protocol.frame list

(** Submit one request and tick until its response arrives — convenience
    for single-threaded drivers.  Responses addressed to other sessions
    produced by the intervening ticks are discarded. *)
val call :
  ?max_ticks:int ->
  t ->
  Protocol.request Protocol.frame ->
  Protocol.response Protocol.frame
