(** The multi-session debug server: N clients multiplexed onto a pool of
    leased boards, advanced in deterministic ticks.

    Per tick, per board: session-lifecycle ops run first, then every
    queued read shares the board — register reads merged into one
    coalesced sweep — then exactly one mutating command holds it
    exclusively.  After a mutator, one status readback serves all
    subscribers: a latched stop fans out as a {!Protocol.Stopped} event.
    Idle sessions are reaped with a [Session_closed] notice. *)

module Board = Zoomie_bitstream.Board
module Controller = Zoomie_debug.Controller

type config = {
  max_sessions_per_board : int;  (** admission: concurrent sessions *)
  max_queue : int;  (** admission: queued requests per board *)
  session_timeout_ticks : int;  (** idle ticks before a session is reaped *)
}

val default_config : config

(** The name the hub writes on {!Board.acquire_lease}. *)
val lease_owner : string

type t

(** [publish_globals] (default [true]): mirror stats onto the shared
    [hub.*] gauges each tick.  Farm shards pass [false] — one hub per
    domain writing the same gauges would be last-writer-wins noise — and
    publish through their own {!Stats.mirror} instead. *)
val create : ?config:config -> ?publish_globals:bool -> unit -> t

val stats : t -> Stats.t

(** The hub's tick clock — the single time source for idle policy. *)
val now : t -> int

(** Put a board under hub ownership; returns its board id.  Fails when
    another driver holds its lease or it has no configured design.  The
    per-design site map is built once here and shared by every session
    that attaches. *)
val add_board : t -> Board.t -> info:Controller.info -> (int, string) result

(** Admit a new session bound to board [board]; returns the session id.
    [Error] when the board is unknown or at its session limit. *)
val open_session : t -> board:int -> (int, string) result

val session_status : t -> int -> Session.status option

val board_ids : t -> int list

(** The underlying board, for farm-level snapshot/restore during
    migration.  The hub still owns it — don't run it behind its back. *)
val board : t -> int -> Board.t option

(** Device name ([xcu200], ...) of a hub board, for compatible-board
    matching during migration. *)
val board_device : t -> int -> string option

(** Hub ticks since the board last saw cable traffic (reads/mutators) —
    the farm's lease-idle clock.  Control ops don't reset it. *)
val board_idle_for : t -> int -> int option

val active_sessions_on : t -> int -> int

(** Requests queued across every board; a shard drains its hub by
    ticking while this is non-zero. *)
val queued : t -> int

val queued_for : t -> int -> int

(** Flag a session as mid-migration: exempt from idle reaping until the
    flag is cleared (or the session is exported). *)
val set_migrating : t -> int -> bool -> unit

(** Close a session without failure responses or a mailbox notice — for
    disconnected clients and post-export cleanup. *)
val close_session : t -> int -> unit

(** Lift an active session out for migration: its attachment's
    [mut_path] (if attached) and subscription flag, then the session is
    removed.  Quiesce its queued work first; leftovers are dropped. *)
val export_session : t -> int -> (string option * bool, string) result

(** Rebuild an exported session on [board] (already restored from the
    source board's snapshot).  Touches the session with this hub's
    clock and bypasses the admission cap. *)
val import_session :
  t -> board:int -> mut_path:string option -> subscribed:bool ->
  (int, string) result

(** Release a board (and its lease) from hub ownership; refuses while
    active sessions are bound to it. *)
val remove_board : t -> int -> (Board.t, string) result

(** Queue one request.  [Error] when the session is unknown or gone, or
    when the board's backlog refuses admission (the request is counted
    as rejected, not queued). *)
val submit : t -> Protocol.request Protocol.frame -> (unit, string) result

(** Advance the hub one tick; returns the responses produced, in grant
    order. *)
val tick : t -> Protocol.response Protocol.frame list

(** Pending events for one session, in delivery order (empties its
    mailbox).  Works on closed sessions — the [Session_closed] notice
    stays collectable. *)
val events : t -> session:int -> Protocol.event Protocol.frame list

(** Submit one request and tick until its response arrives — convenience
    for single-threaded drivers.  Responses addressed to other sessions
    produced by the intervening ticks are discarded. *)
val call :
  ?max_ticks:int ->
  t ->
  Protocol.request Protocol.frame ->
  Protocol.response Protocol.frame
