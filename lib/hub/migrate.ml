(** Hot session migration: lift every session off a cable-idle board,
    capture the board's complete fabric state, and rebuild both on a
    compatible spare.

    The capture is a full-fabric snapshot ({!Readback.full_slr_plan}
    merged across every SLR), not just the MUT columns: the debug
    controller's breakpoint registers, latched stop cause and cycle
    counter live in fabric flops too, so a restored board answers
    [cause]/[cycles]/[status] exactly as the source would have — the
    QCheck transcript-equality property leans on this.

    Compatibility is device name + design tag: a snapshot only means
    the same thing on a board programmed with the identical compiled
    run, which the farm guarantees by loading one run per (device, tag)
    onto every board wearing that tag. *)

module Board = Zoomie_bitstream.Board
module Device = Zoomie_fabric.Device
module Readback = Zoomie_debug.Readback

type moved_session = {
  ms_gsid : int;  (** farm-global session id — stable across the move *)
  ms_mut_path : string option;  (** attachment to rebuild, if any *)
  ms_subscribed : bool;
  ms_respond : string -> unit;  (** the session's wire sinks travel too *)
  ms_event : string -> unit;
}

type capsule = {
  c_device : string;
  c_tag : string;  (** design tag; restore targets must match exactly *)
  c_snapshot : Readback.snapshot;
  c_sessions : moved_session list;
}

let snapshot_board board =
  let device = Board.device board in
  Readback.take_snapshot board
    (Readback.merge_plans
       (List.init (Device.num_slrs device) (fun slr ->
            Readback.full_slr_plan device ~slr)))

(** Capture [board] out of [hub]: export each listed session (caller has
    already quiesced their queued work), snapshot the full fabric,
    release the board from the hub.  Returns the capsule and the freed
    board so the caller can re-admit it as a spare. *)
let capture hub ~board:board_id ~tag ~sessions =
  match Hub.board hub board_id with
  | None -> Error (Printf.sprintf "no board %d" board_id)
  | Some b -> (
    let device = (Board.device b).Device.name in
    let rec export acc = function
      | [] -> Ok (List.rev acc)
      | (gsid, lsid, respond, event) :: rest -> (
        match Hub.export_session hub lsid with
        | Error msg ->
          Error (Printf.sprintf "export session %d: %s" gsid msg)
        | Ok (ms_mut_path, ms_subscribed) ->
          export
            ({
               ms_gsid = gsid;
               ms_mut_path;
               ms_subscribed;
               ms_respond = respond;
               ms_event = event;
             }
            :: acc)
            rest)
    in
    match export [] sessions with
    | Error _ as e -> e
    | Ok c_sessions -> (
      let c_snapshot = snapshot_board b in
      match Hub.remove_board hub board_id with
      | Error msg -> Error ("remove board: " ^ msg)
      | Ok freed ->
        Ok
          ( { c_device = device; c_tag = tag; c_snapshot; c_sessions },
            freed )))

(** Rebuild a capsule on [board] of [hub] (a zero-session spare wearing
    the same device + tag): restore the fabric snapshot, then re-import
    every session.  Returns [(gsid, new lsid)] pairs for the router's
    table.  The imported sessions are touched with the target hub's
    clock — a migrated session must never inherit another shard's idle
    timeline. *)
let plant hub ~board:board_id ~tag capsule =
  match Hub.board hub board_id with
  | None -> Error (Printf.sprintf "no board %d" board_id)
  | Some b ->
    let device = (Board.device b).Device.name in
    if device <> capsule.c_device || tag <> capsule.c_tag then
      Error
        (Printf.sprintf "incompatible target: %s/%s vs capsule %s/%s" device
           tag capsule.c_device capsule.c_tag)
    else if Hub.active_sessions_on hub board_id > 0 then
      Error (Printf.sprintf "target board %d is not a spare" board_id)
    else (
      match Readback.restore_snapshot b capsule.c_snapshot with
      | exception Readback.Bad_snapshot msg -> Error ("restore: " ^ msg)
      | exception Readback.Readback_error msg -> Error ("restore: " ^ msg)
      | () ->
        let rec import acc = function
          | [] -> Ok (List.rev acc)
          | ms :: rest -> (
            match
              Hub.import_session hub ~board:board_id
                ~mut_path:ms.ms_mut_path ~subscribed:ms.ms_subscribed
            with
            | Error msg ->
              Error (Printf.sprintf "import session %d: %s" ms.ms_gsid msg)
            | Ok lsid -> import ((ms, lsid) :: acc) rest)
        in
        import [] capsule.c_sessions)
