(** The cross-session readback coalescer — the hub's reason to exist.

    Every queued [Read_registers] of a tick carries its own frame plan;
    merging them ({!Readback.merge_plans}) deduplicates the columns the
    sessions share, so k clients with overlapping selections cost one
    cable sweep sized by the union instead of k sweeps sized by each
    selection.  The response frames are then demultiplexed per session
    with {!Readback.extract_registers_named} — a pure host-side parse,
    no further traffic.

    The saving is accounted in modeled time: the sweep's actual
    {!Board.jtag_seconds} delta versus the sum of what each request's
    plan would cost standalone ({!Readback.plan_cost}, which prices the
    exact word streams through the same transport meter the executor
    charges — the two sides of the comparison share one cost model). *)

module Board = Zoomie_bitstream.Board
module Host = Zoomie_debug.Host
module Readback = Zoomie_debug.Readback
module Obs = Zoomie_obs.Obs

type read_request = {
  rd_session : int;
  rd_seq : int;
  rd_prefix : string;  (** hierarchical prefix stripped from result names *)
  rd_names : string list;  (** full hierarchical register names *)
  rd_plan : Readback.plan;
}

(** Build one session's coalescable read from its original (unprefixed)
    register names: resolve them against the session's MUT path and plan
    their frames.  [Error] on unknown names — validation happens here,
    before the request can pollute a merged sweep. *)
let request host ~session ~seq ~names =
  try
    let full = List.map (Host.full_register_name host) names in
    let plan = Readback.plan_of_names (Host.site_map host) full in
    Ok
      {
        rd_session = session;
        rd_seq = seq;
        rd_prefix = Host.full_register_name host "";
        rd_names = full;
        rd_plan = plan;
      }
  with Readback.Readback_error msg -> Error msg

type sweep_result = {
  sw_values : (int * int * (string * Zoomie_rtl.Bits.t) list) list;
      (** per request: (session, seq, short-named values) *)
  sw_frames_read : int;  (** frames in the merged sweep *)
  sw_frames_requested : int;  (** sum of the individual plans' frames *)
  sw_seconds : float;  (** actual modeled cable time of the merged sweep *)
  sw_serial_seconds : float;
      (** modeled cost had each request swept alone (the baseline) *)
}

(** Modeled cable cost of executing [plan] standalone: the exact word
    streams the executor would emit, priced through the board's transport
    meter ({!Readback.plan_cost}) — no second copy of the arithmetic. *)
let serial_seconds board (plan : Readback.plan) = Readback.plan_cost board plan

let strip_prefix ~prefix name =
  let plen = String.length prefix in
  if String.length name >= plen && String.sub name 0 plen = prefix then
    String.sub name plen (String.length name - plen)
  else name

(** Execute all requests as one merged sweep and demultiplex: read the
    union plan once, then extract each session's registers from the
    shared frame response.  Result names are the original (unprefixed)
    ones the client asked with. *)
let sweep_untraced board site_map (requests : read_request list) =
  let merged = Readback.merge_plans (List.map (fun r -> r.rd_plan) requests) in
  let before = Board.jtag_seconds board in
  let frames = Readback.read_plan_frames board merged in
  let sw_seconds = Board.jtag_seconds board -. before in
  let sw_values =
    List.map
      (fun r ->
        let values =
          Readback.extract_registers_named site_map frames ~names:r.rd_names
        in
        ( r.rd_session,
          r.rd_seq,
          List.map
            (fun (n, v) -> (strip_prefix ~prefix:r.rd_prefix n, v))
            values ))
      requests
  in
  {
    sw_values;
    sw_frames_read = merged.Readback.total_frames;
    sw_frames_requested =
      List.fold_left
        (fun a r -> a + r.rd_plan.Readback.total_frames)
        0 requests;
    sw_seconds;
    sw_serial_seconds =
      List.fold_left
        (fun a r -> a +. serial_seconds board r.rd_plan)
        0.0 requests;
  }

(** Execute all requests as one merged sweep and demultiplex.  The span's
    modeled clock is the board's meter, sampled at the same points the
    [sw_seconds] accounting samples it — so a trace's hub.sweep modeled
    durations sum to exactly [Stats.cable_seconds]. *)
let sweep board site_map (requests : read_request list) =
  Obs.span ~cat:"hub"
    ~mclock:(fun () -> Board.jtag_seconds board)
    "hub.sweep"
    (fun () -> sweep_untraced board site_map requests)
