(** Hub service counters: arbitration, coalescing, and event-bus
    effectiveness, in modeled units so benches and tests can assert on
    them deterministically. *)

type t = {
  mutable ticks : int;
  mutable requests : int;  (** admitted *)
  mutable responses : int;
  mutable rejected : int;  (** refused by admission control *)
  mutable lock_conflicts : int;  (** mutators deferred behind another session *)
  mutable timeouts : int;  (** sessions reaped idle *)
  mutable sweeps : int;  (** merged readback sweeps executed *)
  mutable coalesced_reads : int;  (** read requests served by those sweeps *)
  mutable frames_read : int;  (** frames actually swept (union) *)
  mutable frames_requested : int;  (** frames the plans asked for (sum) *)
  mutable cable_seconds : float;  (** modeled time of the merged sweeps *)
  mutable serial_cable_seconds : float;
      (** modeled time had every read swept alone *)
  mutable events_published : int;  (** stop events detected *)
  mutable events_delivered : int;  (** per-subscriber deliveries *)
  mutable status_polls : int;  (** status readbacks the hub issued *)
  mutable polls_avoided : int;
      (** subscriber polls replaced by fan-out *)
}

val create : unit -> t

(** Modeled cable time the coalescer saved versus serialized sweeps. *)
val saved_seconds : t -> float

(** Human summary.  Prints [saved_seconds] clamped at 0 and the
    coalescing ratio as [n/a] while no sweep has accumulated cable time
    yet (never [inf]/[nan]). *)
val summary : t -> string

val pp : Format.formatter -> t -> unit

(** Mirror every counter onto the global {!Zoomie_obs.Obs} registry as
    [hub.*] gauges — the record stays the authoritative store, the
    registry is how the REPL/protocol/bench surfaces read it. *)
val publish : t -> unit

(** A prefixed set of gauge handles ([<prefix>.hub.*]) for farm shards:
    each shard mirrors its own hub's stats under its own prefix instead
    of racing the other domains on the global [hub.*] gauges. *)
type mirror

val mirror : string -> mirror

val publish_to : mirror -> t -> unit
