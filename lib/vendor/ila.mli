(** Integrated Logic Analyzer: the traditional debug flow Zoomie replaces.

    An ILA is a compiled-in trace buffer: you choose probes {e before}
    compiling, the capture window is finite, and changing either means
    another multi-hour compile — exactly the §2 pain the case studies
    quantify.  Case study 1's baseline drives this module through five
    probe-set iterations. *)

open Zoomie_rtl

type probe = { probe_signal : string; probe_width : int }

(** Capture window depth (samples). *)
val capture_depth : int

val total_width : probe list -> int

(** The ILA core itself: trigger comparator + circular capture BRAM. *)
val ila_module : name:string -> probe list -> Circuit.t

(** Instantiate an ILA over [probes] in the design's top; returns the
    rewritten design and the ILA instance name. *)
val attach : Design.t -> probes:probe list -> Design.t * string

(** Host-side driver (arm, poll, download the window) — the analogue of
    the vendor's hardware manager. *)
module Runtime : sig
  module Netsim = Zoomie_synth.Netsim

  val arm : Netsim.t -> inst:string -> trig_value:Bits.t -> trig_mask:Bits.t -> unit

  val is_done : Netsim.t -> inst:string -> bool

  (** Download the captured window, oldest sample first. *)
  val window : Netsim.t -> inst:string -> probes:probe list -> Bits.t list

  (** Split one captured row into per-probe values. *)
  val split_row : probe list -> Bits.t -> (string * Bits.t) list
end
