(** The monolithic vendor flow ("Vivado"): whole-design synthesis, whole-
    device place and route, full-bitstream generation, plus the vendor's
    checkpoint-based incremental mode.

    Per Table 1: compilation unit = whole design, optimization = global,
    linking = not required.  The incremental mode reuses a prior checkpoint
    but — because global optimization ripples small RTL changes through the
    monolithic netlist — only a small fraction of prior placement/routing
    survives, yielding the ≈10 % gains §5.2 reports. *)

open Zoomie_rtl
open Zoomie_fabric
module Hier = Zoomie_synth.Hier
module Netlist = Zoomie_synth.Netlist
module Place = Zoomie_pnr.Place
module Route = Zoomie_pnr.Route
module Timing = Zoomie_pnr.Timing
module Framegen = Zoomie_pnr.Framegen
module Cost_model = Zoomie_pnr.Cost_model
module Board = Zoomie_bitstream.Board

type project = {
  device : Device.t;
  design : Design.t;
  clock_root : string;
  freq_mhz : float;
  replicated_units : string list;
      (** module names synthesized once and stamped per instance (how any
          real tool survives a 5400-core design); [] = fully flat *)
}

type run = {
  netlist : Netlist.t;
  placement : Place.t;
  route : Route.stats;
  timing : Timing.report;
  frames : Framegen.frame_write list;
  bitstream : Board.bitstream;
  cost : Cost_model.phase;
  modeled_seconds : float;  (** end-to-end modeled wall clock *)
  utilization : (Resource.kind * int * float) list;  (** Table 2 rows *)
}

let payload_of project netlist locmap =
  {
    Board.netlist;
    locmap;
    clock_root = project.clock_root;
    freq_mhz = project.freq_mhz;
  }

(** Run the full flow.  [incremental_from] supplies a prior run whose
    checkpoint the vendor incremental mode partially reuses. *)
let compile ?incremental_from ?(extra_cells = 0) project =
  let hier = Hier.run project.design ~units:project.replicated_units in
  let netlist = hier.Hier.netlist in
  let regions = Place.whole_device_regions project.device in
  let placement = Place.run project.device ~regions netlist in
  let route = Route.estimate netlist placement.Place.locmap in
  let timing =
    Timing.analyze ~congestion:route.Route.congestion
      ~utilization:(Place.peak_utilization placement)
      netlist placement.Place.locmap
  in
  let frames = Framegen.generate netlist placement.Place.locmap in
  let cells = Netlist.num_cells netlist + extra_cells in
  let base_cost =
    Cost_model.compile
      ~gate_nodes:hier.Hier.stamped_gate_nodes (* monolithic synthesis cost *)
      ~cells
      ~utilization:(Place.peak_utilization placement)
      ~wirelength:route.Route.total_wirelength
      ~congestion:route.Route.congestion
      ~frames:(List.length frames)
  in
  let cost =
    match incremental_from with
    | None -> base_cost
    | Some (_ : run) ->
      (* Synthesis is redone monolithically; placement/routing reuse is
         small because changes are rarely confined to one tile. *)
      let reuse = Cost_model.vendor_incremental_reuse in
      {
        base_cost with
        Cost_model.place_s = base_cost.Cost_model.place_s *. (1.0 -. reuse);
        route_s = base_cost.Cost_model.route_s *. (1.0 -. reuse);
      }
  in
  let modeled_seconds = Cost_model.tool_startup_s +. Cost_model.total cost in
  let bitstream =
    Bitgen.full project.device ~frames
      ~payload:(payload_of project netlist placement.Place.locmap)
  in
  let utilization =
    Resource.utilization
      ~used:(Place.resources_of_netlist netlist)
      ~capacity:(Device.resources project.device)
  in
  {
    netlist;
    placement;
    route;
    timing;
    frames;
    bitstream;
    cost;
    modeled_seconds;
    utilization;
  }

(** Program the board with a compiled run. *)
let load_onto board run = Board.load board run.bitstream

let pp_utilization fmt rows =
  List.iter
    (fun (k, used, pct) ->
      if used > 0 then
        Fmt.pf fmt "  %-8s %10d %8.2f%%@." (Resource.kind_name k) used pct)
    rows
