(** Integrated Logic Analyzer model (the vendor's print-style debug core).

    The ILA is plain RTL: a BRAM ring buffer capturing the concatenated
    probe signals every cycle, a runtime-configurable trigger comparator,
    and a post-trigger countdown.  Its defining limitations — a fixed probe
    list chosen before compilation, a bounded capture window, and a full
    recompile whenever the probe set changes — are exactly what §2.2 and
    case study 1 contrast Zoomie against.

    Runtime configuration (arming, trigger value/mask) is written into the
    ILA's config registers over the debug hub, modeled as register writes on
    the executing netlist. *)

open Zoomie_rtl

type probe = { probe_signal : string; probe_width : int }

let capture_depth = 1024

let total_width probes =
  List.fold_left (fun acc p -> acc + p.probe_width) 0 probes

(** Build the ILA module for the given probe widths.  Ports: [probe] (the
    concatenated signals), clock [clk].  Internal state (all runtime
    configurable / readable by name):
    - [cfg_trig_value], [cfg_trig_mask]: trigger matches when
      [(probe & mask) == (value & mask)] and mask is nonzero
    - [cfg_armed]: capture enable
    - [status_done], [wptr], [trigger_ptr]: readout bookkeeping
    - memory [buffer]: the capture window *)
let ila_module ~name probes =
  let w = total_width probes in
  if w = 0 then invalid_arg "Ila: no probes";
  let b = Builder.create name in
  let clk = Builder.clock b "clk" in
  let probe = Builder.input b "probe" w in
  let cfg_trig_value = Builder.reg_fb b ~clock:clk "cfg_trig_value" w ~next:(fun q -> q) in
  let cfg_trig_mask = Builder.reg_fb b ~clock:clk "cfg_trig_mask" w ~next:(fun q -> q) in
  let cfg_armed = Builder.reg_fb b ~clock:clk "cfg_armed" 1 ~next:(fun q -> q) in
  let addr_bits = 10 in
  let trig_hit = Builder.wire b "trig_hit" 1 in
  Builder.assign b trig_hit
    Expr.(
      Reduce_or (Signal cfg_trig_mask)
      &: ((probe &: Signal cfg_trig_mask) ==: (Signal cfg_trig_value &: Signal cfg_trig_mask)));
  (* Post-trigger countdown: capture half a window after the trigger. *)
  let post_init = capture_depth / 2 in
  let triggered =
    Builder.reg_fb b ~clock:clk "triggered" 1 ~next:(fun q ->
        Expr.(q |: (Signal trig_hit &: Signal cfg_armed)))
  in
  let post_count =
    Builder.reg_fb b ~clock:clk ~init:(Bits.of_int ~width:addr_bits post_init)
      "post_count" addr_bits
      ~next:(fun q ->
        Expr.(
          mux
            (Signal triggered &: Reduce_or q)
            (q -: const_int ~width:addr_bits 1)
            q))
  in
  let status_done = Builder.wire b "status_done" 1 in
  Builder.assign b status_done
    Expr.(Signal triggered &: ~:(Reduce_or (Signal post_count)));
  let capturing = Builder.wire b "capturing" 1 in
  Builder.assign b capturing Expr.(Signal cfg_armed &: ~:(Signal status_done));
  let wptr =
    Builder.reg_fb b ~clock:clk ~enable:(Expr.Signal capturing) "wptr" addr_bits
      ~next:(fun q -> Expr.(q +: const_int ~width:addr_bits 1))
  in
  let trigger_ptr =
    Builder.reg_fb b ~clock:clk
      ~enable:Expr.(Signal trig_hit &: ~:(Signal triggered))
      "trigger_ptr" addr_bits
      ~next:(fun _ -> Expr.Signal wptr)
  in
  ignore trigger_ptr;
  Builder.memory b ~name:"buffer" ~width:w ~depth:capture_depth
    ~writes:
      [ { Circuit.w_clock = clk; w_enable = Expr.Signal capturing;
          w_addr = Expr.Signal wptr; w_data = probe } ]
    ~reads:[] ();
  ignore (Builder.output b "done" 1 (Expr.Signal status_done));
  Builder.finish b

(** Attach an ILA instance at the top of [design], probing top-level-visible
    wires (the signals the user "marked for debug").  Returns the rewritten
    design and the ILA instance name. *)
let attach (design : Design.t) ~probes =
  let inst_name = "ila0" in
  let module_name = "zoomie_vendor_ila" in
  let ila = ila_module ~name:module_name probes in
  let top = Design.top design in
  (* Rebuild the top module with the ILA instance added. *)
  let probe_expr =
    match probes with
    | [] -> invalid_arg "Ila.attach: no probes"
    | first :: rest ->
      List.fold_left
        (fun acc p ->
          let s = Circuit.find_signal top p.probe_signal in
          Expr.Concat (Expr.Signal s.Circuit.id, acc))
        (Expr.Signal (Circuit.find_signal top first.probe_signal).Circuit.id)
        rest
  in
  let clk =
    match top.Circuit.clocks with
    | Circuit.Root_clock c :: _ -> c
    | Circuit.Gated_clock { name; _ } :: _ -> name
    | [] -> invalid_arg "Ila.attach: top has no clock"
  in
  let new_top =
    {
      top with
      Circuit.instances =
        {
          Circuit.inst_name;
          module_name;
          connections = [ Circuit.Drive_input ("probe", probe_expr) ];
          clock_map = [ ("clk", clk) ];
        }
        :: top.Circuit.instances;
    }
  in
  let d = Design.copy design in
  let d = Design.add_module d ila in
  let d = Design.replace_module d new_top in
  (d, inst_name)

(** Runtime control over the executing netlist (models the BSCAN debug hub). *)
module Runtime = struct
  module Netsim = Zoomie_synth.Netsim

  let arm sim ~inst ~trig_value ~trig_mask =
    Netsim.write_register sim (inst ^ ".cfg_trig_value") trig_value;
    Netsim.write_register sim (inst ^ ".cfg_trig_mask") trig_mask;
    Netsim.write_register sim (inst ^ ".cfg_armed") (Bits.of_int ~width:1 1)

  let is_done sim ~inst =
    Bits.to_int (Netsim.read_register sim (inst ^ ".triggered")) = 1
    && Bits.to_int (Netsim.read_register sim (inst ^ ".post_count")) = 0

  (** Extract the capture window: rows oldest-first, each the concatenated
      probe value.  Reads the ILA BRAM the way the host tool dumps it. *)
  let window sim ~inst ~probes =
    let nl = Netsim.netlist sim in
    let w = total_width probes in
    let mem_index = ref (-1) in
    Array.iteri
      (fun i (m : Zoomie_synth.Netlist.mem) ->
        if m.Zoomie_synth.Netlist.mem_name = inst ^ ".buffer" then mem_index := i)
      nl.Zoomie_synth.Netlist.mems;
    if !mem_index < 0 then invalid_arg "Ila.window: buffer not found";
    let wptr = Bits.to_int (Netsim.read_register sim (inst ^ ".wptr")) in
    List.init capture_depth (fun k ->
        let addr = (wptr + k) mod capture_depth in
        let v = ref (Bits.zero w) in
        for bit = 0 to w - 1 do
          if Netsim.mem_bit sim !mem_index ~addr ~bit then v := Bits.set !v bit true
        done;
        !v)

  (** Split a captured row back into per-probe values (declaration order). *)
  let split_row probes row =
    let rec go probes lo acc =
      match probes with
      | [] -> List.rev acc
      | p :: rest ->
        let v = Bits.slice row ~hi:(lo + p.probe_width - 1) ~lo in
        go rest (lo + p.probe_width) ((p.probe_signal, v) :: acc)
    in
    go probes 0 []
end
