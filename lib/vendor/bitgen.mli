(** Bitstream writer: frames → executable command streams.

    Assembles the multi-SLR command stream a real bitgen would: for each
    SLR, in ring order, a SYNC (which also resets the ring target back to
    the primary), IDCODE check, FAR/FDRI frame bursts — reaching
    secondary SLRs with the §4.4 BOUT hops.  [partial] writes only the
    dynamic regions' frames and skips the global reset, preserving all
    other live state (and leaving the §4.7 GSR mask set, exactly like the
    real tool). *)

module Board = Zoomie_bitstream.Board
module Program = Zoomie_bitstream.Program
open Zoomie_fabric

(** Frame writes grouped per SLR. *)
val group_frames :
  Device.t -> Zoomie_pnr.Framegen.frame_write list -> Zoomie_pnr.Framegen.frame_write list array

(** [(slr, hops)] in configuration order (primary first). *)
val ring_order : Device.t -> (int * int) list

(** Full-device bitstream. *)
val full :
  Device.t ->
  frames:Zoomie_pnr.Framegen.frame_write list ->
  payload:Board.payload ->
  Board.bitstream

(** Partial (state-preserving) bitstream over the [dynamic] regions. *)
val partial :
  Device.t ->
  frames:Zoomie_pnr.Framegen.frame_write list ->
  dynamic:Region.t list ->
  payload:Board.payload ->
  Board.bitstream
