(** Bitstream writer: serialize generated frames into the word streams the
    configuration microcontrollers execute.

    Chunk order follows the §4.4 observation: the primary SLR's chunk comes
    first with no BOUT prefix; the k-th secondary chunk is prefixed by k
    consecutive empty BOUT writes.  Each chunk re-writes the device IDCODE —
    only the primary's is actually verified (§4.5). *)

open Zoomie_fabric
module Board = Zoomie_bitstream.Board
module Program = Zoomie_bitstream.Program

(* Group frame writes per SLR, in FAR order. *)
let group_frames device frames =
  let n = Device.num_slrs device in
  let per_slr = Array.make n [] in
  List.iter
    (fun (fw : Zoomie_pnr.Framegen.frame_write) ->
      per_slr.(fw.Zoomie_pnr.Framegen.fw_slr) <-
        fw :: per_slr.(fw.Zoomie_pnr.Framegen.fw_slr))
    frames;
  Array.map List.rev per_slr

(* SLR visit order: primary, then 1 hop, 2 hops, ... *)
let ring_order device =
  let n = Device.num_slrs device in
  List.init n (fun k -> ((device.Device.primary + k) mod n, k))

let emit_slr_chunk prog ~idcode ~frames =
  Program.write_idcode prog idcode;
  List.iter
    (fun (fw : Zoomie_pnr.Framegen.frame_write) ->
      let row, col, minor = fw.Zoomie_pnr.Framegen.fw_key in
      Program.set_far prog ~row ~col ~minor;
      Program.write_frames prog [ fw.Zoomie_pnr.Framegen.fw_data ])
    frames

(** Full-device configuration bitstream. *)
let full device ~frames ~(payload : Board.payload) : Board.bitstream =
  let prog = Program.create () in
  let per_slr = group_frames device frames in
  Program.nop ~n:8 prog;
  let idcode = Int32.to_int device.Device.idcode in
  (* Each chunk begins with SYNC, which re-targets the primary; the BOUT
     run that follows selects the chunk's SLR. *)
  List.iter
    (fun (slr, hops) ->
      Program.sync prog;
      Program.select_slr prog ~hops;
      emit_slr_chunk prog ~idcode ~frames:per_slr.(slr))
    (ring_order device);
  (* Start clocks and release GSR on every SLR (primary last). *)
  List.iter
    (fun (_, hops) ->
      Program.sync prog;
      Program.select_slr prog ~hops;
      Program.start prog)
    (List.rev (ring_order device));
  Program.desync prog;
  {
    Board.bs_words = Program.words prog;
    bs_payload = Some payload;
    bs_partial = false;
    bs_dynamic = [];
  }

(** Partial bitstream covering only [dynamic] regions.  Sets the CTL0 GSR
    mask on every touched SLR and — faithfully to the hardware quirk §4.7
    documents — does NOT clear it afterwards. *)
let partial device ~frames ~dynamic ~(payload : Board.payload) : Board.bitstream =
  let prog = Program.create () in
  let per_slr = group_frames device frames in
  let touched =
    List.filter (fun (slr, _) -> per_slr.(slr) <> []) (ring_order device)
  in
  Program.nop ~n:8 prog;
  let idcode = Int32.to_int device.Device.idcode in
  List.iter
    (fun (slr, hops) ->
      Program.sync prog;
      Program.select_slr prog ~hops;
      Program.set_ctl0 prog ~mask:1 ~value:1;
      emit_slr_chunk prog ~idcode ~frames:per_slr.(slr))
    touched;
  List.iter
    (fun (_, hops) ->
      Program.sync prog;
      Program.select_slr prog ~hops;
      Program.start prog)
    (List.rev touched);
  Program.desync prog;
  {
    Board.bs_words = Program.words prog;
    bs_payload = Some payload;
    bs_partial = true;
    bs_dynamic = dynamic;
  }
