(** The "Vivado" baseline: a monolithic vendor-style compile flow.

    This is the comparator for Figure 7 and §5.2: flat hierarchical
    synthesis of the whole design (replicated units synthesized once,
    stamped), whole-device placement, routing estimation, STA, frame
    generation and a full bitstream — with an incremental mode that,
    like the real tool, reuses the previous run's placement for
    unchanged cells but still re-places, re-routes and re-times the
    {e whole} design, which is why its gain saturates near ~10 % while
    VTI's partition recompiles win ~18x. *)

module Netlist = Zoomie_synth.Netlist
module Place = Zoomie_pnr.Place
module Route = Zoomie_pnr.Route
module Timing = Zoomie_pnr.Timing
module Framegen = Zoomie_pnr.Framegen
module Cost_model = Zoomie_pnr.Cost_model
module Board = Zoomie_bitstream.Board
open Zoomie_fabric

type project = {
  device : Device.t;
  design : Zoomie_rtl.Design.t;
  clock_root : string;
  freq_mhz : float;
  replicated_units : string list;
}

type run = {
  netlist : Netlist.t;
  placement : Place.t;
  route : Route.stats;
  timing : Timing.report;
  frames : Framegen.frame_write list;
  bitstream : Board.bitstream;
  cost : Cost_model.phase;
  modeled_seconds : float;  (** modeled compile wall-clock *)
  utilization : (Resource.kind * int * float) list;  (** Table 2 rows *)
}

(** Compile.  [incremental_from] switches on incremental mode (reuse the
    prior run's checkpoint); [extra_cells] models attached debug IP such
    as ILAs when sizing the run. *)
val compile : ?incremental_from:run -> ?extra_cells:int -> project -> run

(** Program the run's full bitstream onto a board. *)
val load_onto : Board.t -> run -> unit

(** Print utilization as a Table 2-style report. *)
val pp_utilization : Format.formatter -> (Resource.kind * int * float) list -> unit
