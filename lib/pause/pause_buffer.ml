(** Pause buffers: make clock-gating a module safe across decoupled
    interfaces (§3.1, Figure 3).

    The buffer runs on the free (never gated) clock and interposes the
    MUT-side interface.  It upholds the paper's three guarantees:

    1. a transaction initiated by a paused requester is captured, completed
       by the buffer and delivered to the responder during the pause;
    2. a transaction whose completion the frozen requester could not
       observe is re-acknowledged ("restarted") for it after resume —
       exactly once, never duplicated downstream;
    3. with no pending transaction the buffer is combinationally
       transparent — zero added latency.

    Timing note: in the cycle the trigger fires (T), the requester's
    outputs are still genuine — the freeze only suppresses its clock edge
    at the *end* of T.  The stale-valid hazard of Figure 3 therefore only
    exists from T+1 on, so the interface masks use a registered pause
    ([pause_q]); the combinational (deep) pause signal touches only the
    buffer's own flip-flop inputs, keeping the Debug Controller's trigger
    logic off the design's interface paths — this is how the wrapped
    250 MHz stack of case study 3 still closes timing.

    The requester is assumed irrevocable (valid holds until ready), the
    flavor §3.1 calls out; the checker in [test/test_pause.ml] verifies the
    guarantees exhaustively over bounded traces. *)

open Zoomie_rtl

(** RTL for a requester-side pause buffer: the requester (inside the MUT,
    on the gated clock) drives [u_valid]/[u_data] and observes [u_ready];
    the responder sees [d_valid]/[d_data] and drives [d_ready].  [pause] is
    the Debug Controller's gate signal (high = MUT frozen this cycle).

    Ports: clk, pause, u_valid, u_data, d_ready -> u_ready, d_valid, d_data. *)
let requester_side ~name ~width =
  let b = Builder.create name in
  let clk = Builder.clock b "clk" in
  let pause = Builder.input b "pause" 1 in
  let u_valid = Builder.input b "u_valid" 1 in
  let u_data = Builder.input b "u_data" width in
  let d_ready = Builder.input b "d_ready" 1 in
  (* State:
     pause_q     - pause, one cycle late (interface masking)
     full        - captured transaction awaiting downstream acceptance
     buf         - its payload
     pending_ack - transaction already delivered downstream; the requester
                   has not yet observed a ready *)
  let pause_q = Builder.reg_fb b ~clock:clk "pause_q" 1 ~next:(fun _ -> pause) in
  let full = Builder.reg b ~clock:clk "full" 1 in
  let buf = Builder.reg b ~clock:clk "buf" width in
  let pending_ack = Builder.reg b ~clock:clk "pending_ack" 1 in
  let pq = Expr.Signal pause_q in
  let fullx = Expr.Signal full in
  let pendx = Expr.Signal pending_ack in
  (* Downstream: buffered item first; live traffic is masked from the cycle
     after the freeze (the stale valid of Figure 3) and while an old
     transaction awaits re-acknowledgement. *)
  let d_valid = Expr.(Signal full |: (u_valid &: ~:pq &: ~:pendx)) in
  let d_valid_w = Builder.wire_of b "d_valid_w" 1 d_valid in
  let accept_w = Builder.wire_of b "accept" 1 Expr.(d_valid_w &: d_ready) in
  (* Upstream: transparent ready in passthrough; deferred ack after resume. *)
  let u_ready_w =
    Builder.wire_of b "u_ready_w" 1
      Expr.(u_valid &: ~:pq &: (pendx |: (d_ready &: ~:fullx)))
  in
  (* Capture an in-flight request one cycle into the pause. *)
  let capture_w =
    Builder.wire_of b "capture" 1
      Expr.(pq &: pause &: u_valid &: ~:fullx &: ~:pendx)
  in
  Builder.reg_next b full
    Expr.(mux capture_w vdd (mux (accept_w &: fullx) gnd fullx));
  Builder.reg_next b buf Expr.(mux capture_w u_data (Signal buf));
  (* The requester misses a completion when the buffered copy is delivered,
     or when a live handshake fires in the very cycle it froze. *)
  let completes_frozen = Expr.(accept_w &: (fullx |: pause)) in
  let ack_consumed = Expr.(pendx &: u_ready_w &: ~:pause) in
  Builder.reg_next b pending_ack
    Expr.(mux ack_consumed gnd (mux completes_frozen vdd pendx));
  ignore (Builder.output b "u_ready" 1 u_ready_w);
  ignore (Builder.output b "d_valid" 1 d_valid_w);
  ignore (Builder.output b "d_data" width Expr.(mux (Signal full) (Signal buf) u_data));
  Builder.finish b

(** Responder-side protection: when the MUT is the responder, masking its
    ready during pause is sufficient — the external requester simply
    stalls, which latency-insensitive protocols permit.  Masked with the
    registered pause for the same timing reason as above; the MUT cannot
    act on anything it accepts in its freeze cycle anyway. *)
let responder_ready_mask ~pause_q ~mut_ready = Expr.(mut_ready &: ~:pause_q)

(** Behavioral model — the specification the RTL is tested against. *)
module Model = struct
  type t = {
    mutable pause_q : bool;
    mutable full : bool;
    mutable buf : int;
    mutable pending_ack : bool;
  }

  let create () = { pause_q = false; full = false; buf = 0; pending_ack = false }

  (** One free-clock cycle; returns the interface outputs
      (u_ready, d_valid, d_data). *)
  let step m ~pause ~u_valid ~u_data ~d_ready =
    let pq = m.pause_q in
    let d_valid = m.full || (u_valid && (not pq) && not m.pending_ack) in
    let d_data = if m.full then m.buf else u_data in
    let accept = d_valid && d_ready in
    let u_ready =
      u_valid && (not pq) && (m.pending_ack || (d_ready && not m.full))
    in
    let capture = pq && pause && u_valid && (not m.full) && not m.pending_ack in
    let completes_frozen = accept && (m.full || pause) in
    let ack_consumed = m.pending_ack && u_ready && not pause in
    let deliver_buffered = accept && m.full in
    if capture then begin
      m.full <- true;
      m.buf <- u_data
    end
    else if deliver_buffered then m.full <- false;
    if ack_consumed then m.pending_ack <- false
    else if completes_frozen then m.pending_ack <- true;
    m.pause_q <- pause;
    (u_ready, d_valid, d_data)
end
