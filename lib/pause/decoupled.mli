(** Description of one decoupled (valid/ready) interface crossing the
    MUT boundary — what the designer declares so the Debug Controller
    knows where pause buffers must go (§3.1).

    [mut_is_requester] gives the direction: [true] means the MUT drives
    [valid]/[data] outward (it needs its stale valid masked while
    paused); [false] means the MUT consumes (its ready must be masked and
    in-flight beats buffered). *)

type flavor =
  | Plain  (** valid may drop before ready (bare handshake) *)
  | Irrevocable  (** AXI-style: once valid, data holds until accepted *)

type t = {
  if_name : string;
  data_width : int;
  flavor : flavor;
  valid_signal : string;
  ready_signal : string;
  data_signal : string;
  mut_is_requester : bool;
}

val make :
  ?flavor:flavor ->
  name:string ->
  data_width:int ->
  valid:string ->
  ready:string ->
  data:string ->
  mut_is_requester:bool ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
