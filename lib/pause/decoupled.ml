(** Decoupled (latency-insensitive) interface descriptions.

    A decoupled interface is a valid/ready handshake with a data payload;
    the irrevocable flavor additionally requires valid to stay asserted
    until ready (§3.1).  The Debug Controller interposes a pause buffer on
    every decoupled interface crossing the MUT boundary. *)

type flavor =
  | Plain        (** valid may drop before ready *)
  | Irrevocable  (** valid must hold until the handshake completes *)

type t = {
  if_name : string;
  data_width : int;
  flavor : flavor;
  (* Signal names on the MUT boundary. *)
  valid_signal : string;
  ready_signal : string;
  data_signal : string;
  (* Which side of the interface lives inside the MUT. *)
  mut_is_requester : bool;
}

let make ?(flavor = Irrevocable) ~name ~data_width ~valid ~ready ~data
    ~mut_is_requester () =
  {
    if_name = name;
    data_width;
    flavor;
    valid_signal = valid;
    ready_signal = ready;
    data_signal = data;
    mut_is_requester;
  }

let pp fmt t =
  Fmt.pf fmt "%s(%d bits, %s, MUT is %s)" t.if_name t.data_width
    (match t.flavor with Plain -> "plain" | Irrevocable -> "irrevocable")
    (if t.mut_is_requester then "requester" else "responder")
