(** Pause buffers: making clock-gating safe on decoupled interfaces
    (§3.1, Figure 3).

    Freezing a module mid-handshake breaks the protocol in both
    directions: a frozen requester keeps asserting a stale [valid] (the
    responder sees phantom transactions), and a frozen responder drops
    beats that arrive while it cannot raise [ready].  The pause buffer
    sits on the boundary and guarantees, for any pause schedule:

    + no transaction is observed twice (phantoms);
    + no accepted transaction is lost;
    + order is preserved.

    The interface masks are driven by a {e registered} pause signal
    ([pause_q]): the stale-valid hazard only exists from the cycle after
    the freeze takes effect, and using the registered form keeps the
    (deep) trigger logic out of the MUT's combinational data paths — this
    is what lets case study 3's 250 MHz engine keep its frequency.

    These guarantees are verified exhaustively over bounded schedules in
    [test/test_pause.ml] using {!Model} as the specification. *)

open Zoomie_rtl

(** The requester-side buffer as a reusable circuit: catches the beat in
    flight when pause lands, replays it on resume. *)
val requester_side : name:string -> width:int -> Circuit.t

(** Responder-side mask: the upstream sees [ready && !pause_q]. *)
val responder_ready_mask : pause_q:Expr.t -> mut_ready:Expr.t -> Expr.t

(** Executable specification of the requester-side buffer, used as the
    oracle in the exhaustive bounded-schedule tests. *)
module Model : sig
  type t = {
    mutable pause_q : bool;
    mutable full : bool;
    mutable buf : int;
    mutable pending_ack : bool;
  }

  val create : unit -> t

  (** One cycle: inputs are the pause request, the upstream beat and the
      downstream ready; returns (valid, ready, data) as seen downstream. *)
  val step :
    t -> pause:bool -> u_valid:bool -> u_data:int -> d_ready:bool -> bool * bool * int
end
