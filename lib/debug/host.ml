(** The Zoomie debug session: the software half of the Debug Controller.

    Everything here goes through the board's JTAG path — control registers
    are written by state injection, status registers read by readback — so
    the modeled host times (Table 3, case studies) reflect real command
    traffic.  The API mirrors a software debugger: pause, resume, step,
    breakpoints, watch the stop cause, inspect and mutate state, snapshot
    and replay. *)

open Zoomie_rtl
module Board = Zoomie_bitstream.Board
module Netlist = Zoomie_synth.Netlist
module Obs = Zoomie_obs.Obs

(* Observability: the stop-poll loop is the host's hot cable path, so its
   shape (polls per run, runs issued) is worth a counter each; the cable
   time itself is already metered at the board. *)
let obs_status_polls = Obs.counter "host.status_polls"
let obs_runs = Obs.counter "host.run_until_stop"
let obs_stops = Obs.counter "host.stops_observed"

type t = {
  board : Board.t;
  netlist : Netlist.t;
  locmap : Zoomie_fabric.Loc.map;
  info : Controller.info;
  mut_path : string;  (** instance path of the wrapped MUT in the design *)
  site_map : Readback.site_map;
      (** per-design site index, built once at attach time *)
  mut_plan : Readback.plan;    (** columns holding MUT + controller state *)
  plan_cache : (string, Readback.plan) Hashtbl.t;
      (** per-register plans for the hot single-register poll path *)
  mutable poll_chunk : int;    (** design cycles between stop polls *)
  stop_net : int option;
      (** net index of the controller's stop latch, resolved at attach:
          lets the simulation kernel halt a run chunk the cycle the
          breakpoint latches instead of overshooting to the poll *)
}

let dbg_reg t name = t.mut_path ^ "." ^ name

(** The trigger unit's watched signals (for UIs encoding break values). *)
let watches t = t.info.Controller.cfg.Controller.watches

(** Whether any assertions are compiled into the wrapper — their
    breakpoints can stop a [step] before its cycle budget, which cycle
    accounting (the timeline recorder) needs to know statically. *)
let has_assertions t = t.info.Controller.cfg.Controller.assertions <> []

(** Hierarchical path of a register inside the MUT (the wrapper inserts the
    [mut] instance level). *)
let mut_reg t name = t.mut_path ^ ".mut." ^ name

(* Stop polling starts at this granularity and backs off while idle. *)
let initial_poll_chunk = 256
let max_poll_chunk = 16384

let attach ?site_map board ~(info : Controller.info) ~mut_path =
  let payload = Board.payload board in
  let netlist = payload.Board.netlist in
  let locmap = payload.Board.locmap in
  let prefix = mut_path ^ "." in
  let select name = String.starts_with ~prefix name in
  let site_map =
    (* Building the index is the expensive part of attach; sessions that
       share a design (the hub's, all attached to one board) pass the one
       they already have. *)
    match site_map with
    | Some sm -> sm
    | None -> Readback.site_map (Board.device board) netlist locmap
  in
  let mut_plan = Readback.plan_of_select site_map ~select in
  (* Resolve the stop latch's Q net once: its FF is named
     [<mut_path>.dbg_stop_latched] bit 0 in the logic-location data. *)
  let stop_net =
    let latch_name = mut_path ^ "." ^ Controller.stop_latched_reg in
    let found = ref None in
    Array.iteri
      (fun i (name, bit) ->
        if !found = None && name = latch_name && bit = 0 then
          found := Some netlist.Netlist.ffs.(i).Netlist.q)
      netlist.Netlist.ff_names;
    !found
  in
  { board; netlist; locmap; info; mut_path; site_map; mut_plan;
    plan_cache = Hashtbl.create 32; poll_chunk = initial_poll_chunk; stop_net }

(* --- introspection (for multiplexing front-ends like the hub) --- *)

let board t = t.board

let mut_path t = t.mut_path

let site_map t = t.site_map

let poll_chunk t = t.poll_chunk

(** Full hierarchical name of a MUT register given its original name. *)
let full_register_name t name = mut_reg t name

(** Readback plan covering the named MUT registers (original names). *)
let register_plan t names =
  Readback.plan_of_names t.site_map (List.map (mut_reg t) names)

(* --- low-level accessors --- *)

let inject t updates =
  Readback.inject_registers_indexed t.board t.site_map updates

(* Plan for one register, cached: the stop-poll loop reads the same few
   status registers over and over. *)
let plan_of_register t name =
  match Hashtbl.find_opt t.plan_cache name with
  | Some plan -> plan
  | None ->
    let plan = Readback.plan_of_names t.site_map [ name ] in
    Hashtbl.add t.plan_cache name plan;
    plan

let read_one t name =
  let plan = plan_of_register t name in
  match
    Readback.read_registers_indexed t.board t.site_map plan ~select:(fun n ->
        n = name)
  with
  | [ (_, v) ] -> v
  | [] -> invalid_arg (Printf.sprintf "Host: register %S not found" name)
  | hits ->
    (* A register can only legitimately appear once per plan; several hits
       mean the design's logic-location data double-covers the name. *)
    invalid_arg
      (Printf.sprintf
         "Host: register %S matched %d readback entries (malformed \
          logic-location data: duplicate plan coverage)"
         name (List.length hits))

(* --- run control --- *)

let is_stopped t =
  Bits.to_int (read_one t (dbg_reg t Controller.stop_latched_reg)) = 1

type cause = {
  value_bp : bool;
  cycle_bp : bool;
  assertion_bp : bool;
  watch_bp : bool;
  assert_mask : Bits.t option;
}

let stop_cause t =
  let c = read_one t (dbg_reg t Controller.stop_cause_reg) in
  let assert_mask =
    if t.info.Controller.cfg.Controller.assertions = [] then None
    else Some (read_one t (dbg_reg t Controller.assert_cause_reg))
  in
  {
    value_bp = Bits.get c Controller.cause_value_bit;
    cycle_bp = Bits.get c Controller.cause_cycle_bit;
    assertion_bp = Bits.get c Controller.cause_assert_bit;
    watch_bp = Bits.get c Controller.cause_watch_bit;
    assert_mask;
  }

(** Names of the assertions whose breakpoints have fired (from the sticky
    per-assertion cause register). *)
let fired_assertions t =
  match (stop_cause t).assert_mask with
  | None -> []
  | Some mask ->
    List.filteri
      (fun i _ -> i < Bits.width mask && Bits.get mask i)
      (List.map
         (fun (m : Zoomie_sva.Emit.monitor) -> m.Zoomie_sva.Emit.m_name)
         t.info.Controller.cfg.Controller.assertions)

(** Design cycles the MUT has executed (from the controller's counter). *)
let mut_cycles t =
  Bits.to_int (read_one t (dbg_reg t Controller.cycle_count_reg))

(** Pause the MUT from the host (e.g. on a perceived hang). *)
let pause t = inject t [ (dbg_reg t Controller.ctl_run_reg, Bits.of_int ~width:1 0) ]

(* Clear every latched stop condition. *)
let clear_stop t =
  inject t
    ([
       (dbg_reg t Controller.stop_latched_reg, Bits.of_int ~width:1 0);
       (dbg_reg t Controller.stop_cause_reg, Bits.zero 4);
       (dbg_reg t Controller.step_counter_reg, Bits.zero 64);
     ]
    @
    match t.info.Controller.cfg.Controller.assertions with
    | [] -> []
    | l -> [ (dbg_reg t Controller.assert_cause_reg, Bits.zero (List.length l)) ])

(** Resume execution (clears latched stops). *)
let resume t =
  clear_stop t;
  inject t [ (dbg_reg t Controller.ctl_run_reg, Bits.of_int ~width:1 1) ]

(** Let the FPGA run [cycles] of the free clock, polling for a stop.
    Returns true when the design stopped (breakpoint) within the budget.

    The poll interval is adaptive: every idle poll doubles [poll_chunk]
    (capped), and a stop resets it — a long-running design costs
    logarithmically many status readbacks instead of one per chunk, while
    a design that stops often keeps the tight interval.  Overshooting the
    free clock is harmless: the breakpoint latches in hardware and the MUT
    clock gate holds it paused — but when the stop latch's net was
    resolved at attach, the kernel's [run_until] halts the chunk the
    cycle it latches, so the free clock doesn't run past the stop.  The
    JTAG cost is identical either way: the host still pays one status
    readback per poll to observe the stop. *)
let run_until_stop ?(max_cycles = 1_000_000) t =
  Obs.incr obs_runs;
  let rec go remaining =
    if remaining <= 0 then false
    else begin
      let chunk = min t.poll_chunk remaining in
      (match t.stop_net with
      | Some stop_net -> ignore (Board.run_until t.board ~stop_net chunk)
      | None -> Board.run t.board chunk);
      Obs.incr obs_status_polls;
      if is_stopped t then begin
        t.poll_chunk <- initial_poll_chunk;
        Obs.incr obs_stops;
        true
      end
      else begin
        t.poll_chunk <- min max_poll_chunk (t.poll_chunk * 2);
        go (remaining - chunk)
      end
    end
  in
  Obs.span ~cat:"debug"
    ~mclock:(fun () -> Board.jtag_seconds t.board)
    "host.run_until_stop"
    (fun () -> go max_cycles)

(** Single-step the MUT by [n] design cycles (gdb's [until]): arm the cycle
    breakpoint and resume. *)
let step t n =
  clear_stop t;
  inject t
    [
      (dbg_reg t Controller.step_counter_reg, Bits.of_int ~width:64 n);
      (dbg_reg t Controller.ctl_run_reg, Bits.of_int ~width:1 1);
    ];
  let stopped = run_until_stop ~max_cycles:(8 * (n + t.poll_chunk)) t in
  if not stopped then invalid_arg "Host.step: design did not stop"

(* --- breakpoints --- *)

(** Arm a value breakpoint: stop when all (watch, value) pairs match. *)
let break_on_all t conds =
  let spec = Trigger.arm_all t.info.Controller.cfg.Controller.watches conds in
  inject t (List.map (fun (r, v) -> (dbg_reg t r, v)) spec)

(** Arm a value breakpoint: stop when any (watch, value) pair matches. *)
let break_on_any t conds =
  let spec = Trigger.arm_any t.info.Controller.cfg.Controller.watches conds in
  inject t (List.map (fun (r, v) -> (dbg_reg t r, v)) spec)

(** Arm a watchpoint: stop in the cycle a watched signal changes value.
    The hardware shadow register continuously tracks the signal, so arming
    while paused never fires on stale history. *)
let watch_on t names =
  let watches = t.info.Controller.cfg.Controller.watches in
  let updates =
    List.map
      (fun name ->
        match
          List.find_opt (fun (w : Trigger.watch) -> w.Trigger.w_name = name) watches
        with
        | None -> invalid_arg (Printf.sprintf "Host.watch_on: %S is not watched" name)
        | Some w -> (dbg_reg t (Controller.watch_mask_reg w), Bits.of_int ~width:1 1))
      names
  in
  inject t updates

let watch_off t names =
  let watches = t.info.Controller.cfg.Controller.watches in
  let updates =
    List.map
      (fun name ->
        match
          List.find_opt (fun (w : Trigger.watch) -> w.Trigger.w_name = name) watches
        with
        | None -> invalid_arg (Printf.sprintf "Host.watch_off: %S is not watched" name)
        | Some w -> (dbg_reg t (Controller.watch_mask_reg w), Bits.of_int ~width:1 0))
      names
  in
  inject t updates

let clear_value_breakpoints t =
  let spec = Trigger.disarm t.info.Controller.cfg.Controller.watches in
  inject t (List.map (fun (r, v) -> (dbg_reg t r, v)) spec)

(** Enable/disable assertion breakpoints by index. *)
let set_assertion_enables t enables =
  let n = List.length t.info.Controller.cfg.Controller.assertions in
  if n = 0 then invalid_arg "Host: no assertions compiled in";
  let v = ref (Bits.zero n) in
  List.iteri (fun i en -> if en then v := Bits.set !v i true) enables;
  inject t [ (dbg_reg t Controller.assert_enable_reg, !v) ]

(* --- state access (§3.2, §3.3) --- *)

(** Read the full MUT state: every register inside the wrapped module, with
    hierarchical names, via SLR-aware readback. *)
let read_state t =
  let prefix = t.mut_path ^ ".mut." in
  Readback.read_registers_indexed t.board t.site_map t.mut_plan
    ~select:(fun n -> String.starts_with ~prefix n)

(** Read one MUT register by its original name. *)
let read_register t name = read_one t (mut_reg t name)

(** Overwrite a MUT register (state injection). *)
let write_register t name v = inject t [ (mut_reg t name, v) ]

(* --- batched (63-lane) fuzz-farm access --- *)

(** The board's 63-lane batch shadow model (compiled lazily; see
    {!Board.batch_sim}).  Off-cable: probing it costs no JTAG. *)
let batch t = Board.batch_sim t.board

(** Advance the batch shadow model [n] design-clock cycles in all lanes. *)
let run_batch t n = Board.run_batch t.board n

(** Read a MUT register by its original name as one batch lane sees it —
    the per-lane demux of {!read_register}. *)
let read_register_lane t ~lane name =
  Zoomie_synth.Netsim_batch.read_register (batch t) ~lane (mut_reg t name)

(** Overwrite a MUT register in one batch lane only (per-lane state
    injection into the shadow model). *)
let write_register_lane t ~lane name v =
  Zoomie_synth.Netsim_batch.write_register (batch t) ~lane (mut_reg t name) v

(** Read the full contents of a MUT memory by its original name. *)
let read_memory t name =
  Readback.read_memory_indexed t.board t.site_map ~name:(mut_reg t name)

(** Overwrite MUT memory words: [(address, value)] pairs. *)
let write_memory t name updates =
  Readback.inject_memory_indexed t.board t.site_map ~name:(mut_reg t name) updates

(** Snapshot the MUT (registers + memories, as configuration frames). *)
let snapshot t = Readback.take_snapshot t.board t.mut_plan

(** Replay a snapshot: restore frames and state, leaving the rest of the
    design untouched (§3.3 — preserve emulation progress). *)
let restore t snap = Readback.restore_snapshot t.board snap

(** Modeled host-side seconds spent on JTAG so far. *)
let jtag_seconds t = Board.jtag_seconds t.board

(* --- runtime waveform capture --- *)

(** Trace the paused MUT for [cycles] cycles: single-step, read back the
    registers whose original (unprefixed) name satisfies [signals], and
    collect a waveform.  Runtime-chosen probes and window — what the ILA
    flow needs a recompile for.  Each traced cycle costs one step and one
    selective readback of real JTAG traffic. *)
let trace ?(signals = fun _ -> true) t ~cycles =
  let wave = Wave.create ~scope:t.mut_path () in
  let prefix = t.mut_path ^ ".mut." in
  let plen = String.length prefix in
  let sample_now () =
    let regs =
      List.filter_map
        (fun (name, v) ->
          let short = String.sub name plen (String.length name - plen) in
          if signals short then Some (short, v) else None)
        (read_state t)
    in
    Wave.sample wave regs
  in
  sample_now ();
  for _ = 1 to cycles do
    step t 1;
    sample_now ()
  done;
  wave

(* --- state comparison --- *)

(** Registers that differ between two {!read_state} results (or any two
    (name, value) association lists): [(name, before, after)].  Names
    present in only one side pair with [None].  The result is canonical —
    sorted by full register name — regardless of input order or hash-table
    iteration order, because replay-divergence reports and [when-did]
    binary search compare diffs structurally. *)
let diff_states before after =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (n, v) -> Hashtbl.replace tbl n v) before;
  let changed =
    List.filter_map
      (fun (n, v2) ->
        match Hashtbl.find_opt tbl n with
        | Some v1 ->
          Hashtbl.remove tbl n;
          if Bits.equal v1 v2 then None else Some (n, Some v1, Some v2)
        | None -> Some (n, None, Some v2))
      after
  in
  let removed = Hashtbl.fold (fun n v acc -> (n, Some v, None) :: acc) tbl [] in
  List.sort
    (fun (a, _, _) (b, _, _) -> String.compare a b)
    (changed @ removed)
