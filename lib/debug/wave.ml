(** Source-agnostic waveform collection with VCD export.

    {!Host.trace} uses this to give the software-debugger experience the
    ILA flow needs a recompile for: after a breakpoint, single-step the
    paused MUT and read the registers of interest back each cycle —
    producing a standard VCD that any waveform viewer opens, for exactly
    the signals and window the user asks for, chosen {e at runtime}.

    The collector itself just accepts named samples; it doesn't care
    whether they came from readback, a simulator, or a file. *)

open Zoomie_rtl

type tracked = {
  tk_name : string;
  tk_code : string;
  tk_width : int;
  mutable tk_last : Bits.t option;
}

type t = {
  scope : string;
  timescale : string;
  mutable signals : tracked list;  (* reversed declaration order *)
  mutable by_name : (string * tracked) list;
  mutable changes : (int * (tracked * Bits.t) list) list;  (* reversed *)
  mutable time : int;
}

(* VCD identifier codes: printable ASCII 33..126, little-endian digits. *)
let code_of_index i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let digit = Char.chr (first + (i mod base)) in
    let acc = acc ^ String.make 1 digit in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create ?(timescale = "1ns") ~scope () =
  { scope; timescale; signals = []; by_name = []; changes = []; time = 0 }

let track t name width =
  match List.assoc_opt name t.by_name with
  | Some tk -> tk
  | None ->
    let tk =
      {
        tk_name = name;
        tk_code = code_of_index (List.length t.signals);
        tk_width = width;
        tk_last = None;
      }
    in
    t.signals <- tk :: t.signals;
    t.by_name <- (name, tk) :: t.by_name;
    tk

(** Record one cycle's worth of (name, value) samples; signals are
    auto-declared on first appearance, and only changes are stored. *)
let sample t values =
  let delta =
    List.filter_map
      (fun (name, v) ->
        let tk = track t name (Bits.width v) in
        match tk.tk_last with
        | Some prev when Bits.equal prev v -> None
        | _ ->
          tk.tk_last <- Some v;
          Some (tk, v))
      values
  in
  if delta <> [] then t.changes <- (t.time, delta) :: t.changes;
  t.time <- t.time + 1

let cycles t = t.time

let signal_count t = List.length t.signals

(** Serialize to VCD text. *)
let contents t =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "$date zoomie trace $end\n";
  pr "$version zoomie host-side waveform capture $end\n";
  pr "$timescale %s $end\n" t.timescale;
  pr "$scope module %s $end\n"
    (String.map (fun c -> if c = '.' then '_' else c) t.scope);
  List.iter
    (fun tk ->
      pr "$var wire %d %s %s $end\n" tk.tk_width tk.tk_code
        (String.map (fun c -> if c = '.' then '_' else c) tk.tk_name))
    (List.rev t.signals);
  pr "$upscope $end\n$enddefinitions $end\n";
  List.iter
    (fun (time, delta) ->
      pr "#%d\n" time;
      List.iter
        (fun (tk, v) ->
          if tk.tk_width = 1 then
            pr "%d%s\n" (if Bits.get v 0 then 1 else 0) tk.tk_code
          else pr "b%s %s\n" (Bits.to_binary_string v) tk.tk_code)
        delta)
    (List.rev t.changes);
  Buffer.contents buf

let write t path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc
