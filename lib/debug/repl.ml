(** A gdb-flavored command interpreter over a debug session.

    Commands (one per line; [#] starts a comment):
    {v
      run N               let the FPGA run N free-clock cycles
      continue [N]        resume and run until a breakpoint (budget N)
      pause | resume      host-initiated pause / resume
      step N              execute exactly N MUT cycles
      break SIG=VAL ...   value breakpoint on all pairs matching
      break-any SIG=VAL.. value breakpoint on any pair matching
      watch SIG ...       watchpoint: stop when SIG changes
      unwatch SIG ...     disarm watchpoints
      clear               disarm value breakpoints
      print REG           one MUT register
      mem NAME ADDR       one memory word
      state               every MUT register
      inject REG VAL      overwrite a register (decimal or 0x..)
      trace N FILE        step N cycles, dump the waveform as VCD to FILE
      save FILE           snapshot MUT state to FILE (v2 format)
      load FILE           restore MUT state from a snapshot FILE
      cause | cycles      stop cause / executed MUT cycles
      status              stopped?
      stats               cable meter + kernel counters + metrics registry
      trace on|off        enable / disable span tracing
      trace dump FILE     write collected spans as Chrome trace JSON
      record [CADENCE]    start the session flight recorder
      record save FILE    persist the recording (versioned .zrec format)
      record status       entries / checkpoints / cadence of the recorder
      reverse-step [N]    travel N MUT cycles backwards (default 1)
      reverse-continue C  travel back to recorded MUT cycle C
      when-did REG        binary-search checkpoints for REG's last change
    v}

    The time-travel verbs ([record*], [reverse-*], [when-did]) parse and
    print here so they travel over wire protocols, but executing them
    needs the flight recorder: {!Timeline.execute} wraps {!execute} and
    handles them; bare {!execute} raises [Invalid_argument].

    [run_script] executes a whole script and returns the transcript — the
    debugging equivalent of a testbench, and how the test suite drives it. *)

open Zoomie_rtl
module Board = Zoomie_bitstream.Board
module Jtag = Zoomie_bitstream.Jtag
module Obs = Zoomie_obs.Obs

type command =
  | Run of int
  | Continue of int
  | Pause
  | Resume
  | Step of int
  | Break_all of (string * int) list
  | Break_any of (string * int) list
  | Watch of string list
  | Unwatch of string list
  | Clear
  | Print of string
  | Mem of string * int
  | State
  | Inject of string * int
  | Trace of int * string
  | Save of string
  | Load of string
  | Cause
  | Cycles
  | Status
  | Stats
  | Trace_ctl of bool
  | Trace_dump of string
  | Record of int option
  | Record_save of string
  | Record_status
  | Reverse_step of int
  | Reverse_continue of int
  | When_did of string
  | Nop

let parse_int s =
  try
    Some
      (if String.length s > 2 && String.sub s 0 2 = "0x" then
         int_of_string s
       else int_of_string s)
  with _ -> None

let parse_pair s =
  match String.split_on_char '=' s with
  | [ name; v ] -> (
    match parse_int v with Some v -> Some (name, v) | None -> None)
  | _ -> None

let parse_line line : (command, string) result =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> Ok Nop
  | [ "run"; n ] -> (
    match parse_int n with
    | Some n -> Ok (Run n)
    | None -> Error "run: bad cycle count")
  | [ "continue" ] -> Ok (Continue 100_000)
  | [ "continue"; n ] -> (
    match parse_int n with
    | Some n -> Ok (Continue n)
    | None -> Error "continue: bad budget")
  | [ "pause" ] -> Ok Pause
  | [ "resume" ] -> Ok Resume
  | [ "step"; n ] -> (
    match parse_int n with Some n -> Ok (Step n) | None -> Error "step: bad count")
  | "break" :: pairs when pairs <> [] -> (
    match List.map parse_pair pairs with
    | l when List.for_all Option.is_some l ->
      Ok (Break_all (List.map Option.get l))
    | _ -> Error "break: expected SIG=VAL pairs")
  | "break-any" :: pairs when pairs <> [] -> (
    match List.map parse_pair pairs with
    | l when List.for_all Option.is_some l ->
      Ok (Break_any (List.map Option.get l))
    | _ -> Error "break-any: expected SIG=VAL pairs")
  | "watch" :: names when names <> [] -> Ok (Watch names)
  | "unwatch" :: names when names <> [] -> Ok (Unwatch names)
  | [ "clear" ] -> Ok Clear
  | [ "print"; reg ] -> Ok (Print reg)
  | [ "mem"; name; addr ] -> (
    match parse_int addr with
    | Some a -> Ok (Mem (name, a))
    | None -> Error "mem: bad address")
  | [ "state" ] -> Ok State
  | [ "inject"; reg; v ] -> (
    match parse_int v with
    | Some v -> Ok (Inject (reg, v))
    | None -> Error "inject: bad value")
  | [ "trace"; "on" ] -> Ok (Trace_ctl true)
  | [ "trace"; "off" ] -> Ok (Trace_ctl false)
  (* must precede the [trace N FILE] int-parse below *)
  | [ "trace"; "dump"; file ] -> Ok (Trace_dump file)
  | [ "trace"; n; file ] -> (
    match parse_int n with
    | Some n -> Ok (Trace (n, file))
    | None -> Error "trace: bad cycle count")
  | [ "save"; file ] -> Ok (Save file)
  | [ "load"; file ] -> Ok (Load file)
  | [ "record" ] -> Ok (Record None)
  (* must precede the [record CADENCE] int-parse below *)
  | [ "record"; "save"; file ] -> Ok (Record_save file)
  | [ "record"; "status" ] -> Ok Record_status
  | [ "record"; n ] -> (
    match parse_int n with
    | Some n when n > 0 -> Ok (Record (Some n))
    | Some _ -> Error "record: cadence must be positive"
    | None -> Error "record: bad checkpoint cadence")
  | [ "reverse-step" ] -> Ok (Reverse_step 1)
  | [ "reverse-step"; n ] -> (
    match parse_int n with
    | Some n when n > 0 -> Ok (Reverse_step n)
    | Some _ -> Error "reverse-step: count must be positive"
    | None -> Error "reverse-step: bad cycle count")
  | [ "reverse-continue"; n ] -> (
    match parse_int n with
    | Some n when n >= 0 -> Ok (Reverse_continue n)
    | Some _ -> Error "reverse-continue: bad target cycle"
    | None -> Error "reverse-continue: bad target cycle")
  | [ "when-did"; reg ] -> Ok (When_did reg)
  | [ "cause" ] -> Ok Cause
  | [ "cycles" ] -> Ok Cycles
  | [ "status" ] -> Ok Status
  | [ "stats" ] -> Ok Stats
  | w :: _ -> Error (Printf.sprintf "unknown command %S" w)

(** The inverse of {!parse_line}: render a command back to the line syntax
    (used by wire protocols that carry commands as text).  [Nop] renders
    as the empty line. *)
let command_to_string (cmd : command) : string =
  let pairs l =
    String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) l)
  in
  match cmd with
  | Run n -> Printf.sprintf "run %d" n
  | Continue n -> Printf.sprintf "continue %d" n
  | Pause -> "pause"
  | Resume -> "resume"
  | Step n -> Printf.sprintf "step %d" n
  | Break_all l -> "break " ^ pairs l
  | Break_any l -> "break-any " ^ pairs l
  | Watch names -> "watch " ^ String.concat " " names
  | Unwatch names -> "unwatch " ^ String.concat " " names
  | Clear -> "clear"
  | Print reg -> Printf.sprintf "print %s" reg
  | Mem (name, addr) -> Printf.sprintf "mem %s %d" name addr
  | State -> "state"
  | Inject (reg, v) -> Printf.sprintf "inject %s %d" reg v
  | Trace (n, file) -> Printf.sprintf "trace %d %s" n file
  | Save file -> Printf.sprintf "save %s" file
  | Load file -> Printf.sprintf "load %s" file
  | Cause -> "cause"
  | Cycles -> "cycles"
  | Status -> "status"
  | Stats -> "stats"
  | Trace_ctl true -> "trace on"
  | Trace_ctl false -> "trace off"
  | Trace_dump file -> Printf.sprintf "trace dump %s" file
  | Record None -> "record"
  | Record (Some n) -> Printf.sprintf "record %d" n
  | Record_save file -> Printf.sprintf "record save %s" file
  | Record_status -> "record status"
  | Reverse_step n -> Printf.sprintf "reverse-step %d" n
  | Reverse_continue n -> Printf.sprintf "reverse-continue %d" n
  | When_did reg -> Printf.sprintf "when-did %s" reg
  | Nop -> ""

(* Width of a named watch (for encoding break values). *)
let watch_width host name =
  match
    List.find_opt
      (fun (w : Trigger.watch) -> w.Trigger.w_name = name)
      (Host.watches host)
  with
  | Some w -> w.Trigger.w_width
  | None -> 64

let execute host board (cmd : command) : string =
  match cmd with
  | Nop -> ""
  | Run n ->
    Board.run board n;
    Printf.sprintf "ran %d cycles" n
  | Continue budget ->
    Host.resume host;
    if Host.run_until_stop ~max_cycles:budget host then "stopped (breakpoint)"
    else Printf.sprintf "still running after %d cycles" budget
  | Pause ->
    Host.pause host;
    "paused"
  | Resume ->
    Host.resume host;
    "resumed"
  | Step n ->
    Host.step host n;
    Printf.sprintf "stepped %d cycles" n
  | Break_all pairs ->
    Host.break_on_all host
      (List.map (fun (n, v) -> (n, Bits.of_int ~width:(watch_width host n) v)) pairs);
    "value breakpoint armed (all-of)"
  | Break_any pairs ->
    Host.break_on_any host
      (List.map (fun (n, v) -> (n, Bits.of_int ~width:(watch_width host n) v)) pairs);
    "value breakpoint armed (any-of)"
  | Watch names ->
    Host.watch_on host names;
    "watchpoints armed"
  | Unwatch names ->
    Host.watch_off host names;
    "watchpoints disarmed"
  | Clear ->
    Host.clear_value_breakpoints host;
    "value breakpoints cleared"
  | Print reg ->
    let v = Host.read_register host reg in
    Printf.sprintf "%s = %s (%d)" reg (Bits.to_string v)
      (try Bits.to_int v with Invalid_argument _ -> -1)
  | Mem (name, addr) ->
    let contents = Host.read_memory host name in
    if addr < 0 || addr >= Array.length contents then "address out of range"
    else Printf.sprintf "%s[%d] = %s" name addr (Bits.to_string contents.(addr))
  | State ->
    Host.read_state host
    |> List.map (fun (n, v) -> Printf.sprintf "%s = %s" n (Bits.to_string v))
    |> String.concat "\n"
  | Inject (reg, v) ->
    let width = Bits.width (Host.read_register host reg) in
    Host.write_register host reg (Bits.of_int ~width v);
    Printf.sprintf "%s <- %d" reg v
  | Trace (n, file) ->
    let wave = Host.trace host ~cycles:n in
    Wave.write wave file;
    Printf.sprintf "traced %d cycles of %d signals -> %s" (Wave.cycles wave - 1)
      (Wave.signal_count wave) file
  | Save file ->
    let snap = Host.snapshot host in
    Readback.save_snapshot snap file;
    Printf.sprintf "saved snapshot at cycle %d -> %s" snap.Readback.snap_cycle file
  | Load file ->
    let snap = Readback.load_snapshot file in
    Host.restore host snap;
    Printf.sprintf "restored snapshot taken at cycle %d <- %s"
      snap.Readback.snap_cycle file
  | Cause ->
    let c = Host.stop_cause host in
    Printf.sprintf "value=%b cycle=%b assertion=%b watch=%b" c.Host.value_bp
      c.Host.cycle_bp c.Host.assertion_bp c.Host.watch_bp
  | Cycles -> Printf.sprintf "mut cycles = %d" (Host.mut_cycles host)
  | Status -> if Host.is_stopped host then "stopped" else "running"
  | Stats ->
    let m = Board.meter board in
    let k = Jtag.Meter.counts m in
    let cable =
      Printf.sprintf
        "cable: transfers=%d words=%d syncs=%d hops=%d jtag_seconds=%.6f"
        (Jtag.Meter.transfers m) k.Jtag.Meter.m_words k.Jtag.Meter.m_syncs
        k.Jtag.Meter.m_hops (Board.jtag_seconds board)
    in
    let kernel =
      match try Some (Board.netsim board) with Invalid_argument _ -> None with
      | None -> "kernel: no design loaded"
      | Some ns ->
        let c = Board.Netsim.counters ns in
        Printf.sprintf
          "kernel: events=%d levels=%d edges=%d tick_hits=%d tick_misses=%d \
           dispatches=%d syncs=%d"
          c.Board.Netsim.events_settled c.Board.Netsim.levels_touched
          c.Board.Netsim.edges c.Board.Netsim.tick_cache_hits
          c.Board.Netsim.tick_cache_misses c.Board.Netsim.partition_dispatches
          c.Board.Netsim.boundary_syncs
    in
    String.concat "\n" [ cable; kernel; Obs.snapshot_summary (Obs.snapshot ()) ]
  | Trace_ctl on ->
    Obs.set_tracing on;
    if on then "tracing on" else "tracing off"
  | Trace_dump file ->
    let n = List.length (Obs.spans ()) in
    Obs.write_chrome_trace file;
    Printf.sprintf "wrote %d spans -> %s" n file
  | Record _ | Record_save _ | Record_status | Reverse_step _
  | Reverse_continue _ | When_did _ ->
    (* Time-travel verbs live one layer up: they need the session flight
       recorder ({!Timeline.execute}), which wraps this interpreter. *)
    invalid_arg "timeline commands need a recorder-capable front-end"

(** Run a newline-separated script; returns the transcript (one entry per
    non-empty command, prefixed with the command itself). *)
let run_script host board script =
  String.split_on_char '\n' script
  |> List.filter_map (fun line ->
         match parse_line line with
         | Ok Nop -> None
         | Ok cmd ->
           let out =
             try execute host board cmd with
             | Invalid_argument msg -> "error: " ^ msg
             | Readback.Readback_error msg -> "error: " ^ msg
             | Readback.Bad_snapshot msg -> "error: bad snapshot: " ^ msg
           in
           Some (Printf.sprintf "> %s\n%s" (String.trim line) out)
         | Error msg -> Some (Printf.sprintf "> %s\nerror: %s" (String.trim line) msg))
