(** The pre-index readback executor, retained verbatim-in-spirit from the
    original association-list implementation.

    This module exists for two reasons only:

    - {b differential testing}: the property suite checks that the indexed
      engine in {!Readback} extracts exactly the same register values as
      this reference on random state, and
    - {b benchmarking}: the [readback] micro-bench measures the indexed
      engine's register-extraction throughput against this baseline (the
      O(sites × frames) behavior the Table 3 host path used to have).

    Do not use it on any production path.  Unlike {!Readback}, it keeps
    the seed's silent-zero semantics: bits whose frames are missing from
    the response read back as [false]. *)

open Zoomie_fabric
module Board = Zoomie_bitstream.Board
module Netlist = Zoomie_synth.Netlist

(* Bit lookup in an association-list frame response — List.assoc_opt per
   call, the hot-path cost this baseline exists to demonstrate. *)
let frame_bit frames key ~word ~bit =
  match List.assoc_opt key frames with
  | Some words -> (words.(word) lsr bit) land 1 = 1
  | None -> false

(** The seed register-extraction algorithm: per-SLR association lists of
    [(row, col, minor) -> words], [List.assoc_opt]/[List.mem_assoc] per FF
    site. *)
let extract_registers (netlist : Netlist.t) (locmap : Loc.map)
    (per_slr : (int * ((int * int * int) * int array) list) list) ~select =
  let values : (string, Zoomie_rtl.Bits.t) Hashtbl.t = Hashtbl.create 64 in
  (* Pre-size each register from its highest bit index. *)
  let widths = Hashtbl.create 64 in
  Array.iter
    (fun (name, bit) ->
      if select name then
        Hashtbl.replace widths name
          (max (bit + 1) (try Hashtbl.find widths name with Not_found -> 1)))
    netlist.Netlist.ff_names;
  Array.iteri
    (fun i (site : Loc.ff_site) ->
      let name, bit = netlist.Netlist.ff_names.(i) in
      if select name then
        match List.assoc_opt site.Loc.f_slr per_slr with
        | None -> ()
        | Some frames ->
          let minor, word, fbit = Loc.ff_frame_bit site in
          let covered =
            List.mem_assoc (site.Loc.f_row, site.Loc.f_col, minor) frames
          in
          if covered then begin
            let v =
              frame_bit frames (site.Loc.f_row, site.Loc.f_col, minor) ~word
                ~bit:fbit
            in
            let cur =
              match Hashtbl.find_opt values name with
              | Some b -> b
              | None -> Zoomie_rtl.Bits.zero (Hashtbl.find widths name)
            in
            Hashtbl.replace values name
              (if v then Zoomie_rtl.Bits.set cur bit true else cur)
          end)
    locmap.Loc.ff_sites;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) values []
  |> List.sort compare

(** Execute a readback plan with the baseline extractor: frames travel
    through the same transport as {!Readback.read_slr_frames}, then the
    response is downgraded to per-SLR association lists and parsed the
    original way. *)
let read_registers board (netlist : Netlist.t) (locmap : Loc.map)
    (plan : Readback.plan) ~select =
  let slrs =
    List.sort_uniq compare
      (List.map (fun (c : Readback.column) -> c.Readback.c_slr) plan.Readback.columns)
  in
  let per_slr =
    List.map
      (fun slr ->
        let idx = Readback.read_slr_frames board plan ~slr in
        (slr, Readback.Frame_index.to_assoc idx ~slr))
      slrs
  in
  extract_registers netlist locmap per_slr ~select
