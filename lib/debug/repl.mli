(** A scriptable gdb-style command interpreter over {!Host} sessions —
    the interactive surface of [zoomie repl].

    Commands: [run N], [continue N], [pause], [resume], [step N],
    [break sig=val ...], [break-any sig=val ...], [watch sig ...],
    [unwatch sig ...], [clear], [print reg], [mem name addr], [state],
    [inject reg val], [trace n file.vcd], [save file], [load file],
    [cause], [cycles], [status], [stats], [trace on], [trace off],
    [trace dump file.json], [record \[cadence\]], [record save file],
    [record status], [reverse-step \[n\]], [reverse-continue cycle],
    [when-did reg].
    Blank lines and [#]-comments are ignored. *)

module Board = Zoomie_bitstream.Board

type command =
  | Run of int
  | Continue of int
  | Pause
  | Resume
  | Step of int
  | Break_all of (string * int) list
  | Break_any of (string * int) list
  | Watch of string list
  | Unwatch of string list
  | Clear
  | Print of string
  | Mem of string * int
  | State
  | Inject of string * int
  | Trace of int * string
  | Save of string  (** snapshot MUT state to a file (v2 format) *)
  | Load of string  (** restore MUT state from a snapshot file *)
  | Cause
  | Cycles
  | Status
  | Stats  (** cable meter + kernel counters + metrics registry summary *)
  | Trace_ctl of bool  (** [trace on] / [trace off]: toggle span tracing *)
  | Trace_dump of string  (** write collected spans as Chrome trace JSON *)
  | Record of int option
      (** [record \[CADENCE\]]: start the flight recorder, checkpointing
          every CADENCE MUT cycles (handled by {!Timeline.execute}) *)
  | Record_save of string  (** persist the recording (.zrec format) *)
  | Record_status  (** recorder entry/checkpoint/cadence summary *)
  | Reverse_step of int  (** travel N MUT cycles backwards *)
  | Reverse_continue of int  (** travel back to a recorded MUT cycle *)
  | When_did of string
      (** binary-search checkpoints for a register's last change *)
  | Nop

(** Parse one input line.  [Error msg] describes the syntax problem. *)
val parse_line : string -> (command, string) result

(** The inverse of {!parse_line}: render a command back to the line
    syntax — [parse_line (command_to_string c) = Ok c] for every
    command.  Used by wire protocols that carry commands as text.
    [Nop] renders as the empty line. *)
val command_to_string : command -> string

(** Execute one command; the result is the text a user would see.  Errors
    (unknown register, unwatched signal, ...) are caught and reported as
    ["error: ..."] rather than aborting the session.  The time-travel
    verbs ([Record*], [Reverse_*], [When_did]) need the session flight
    recorder and raise [Invalid_argument] here — drive them through
    {!Timeline.execute}, which wraps this interpreter. *)
val execute : Host.t -> Board.t -> command -> string

(** Run a newline-separated script; returns the per-command transcript
    (parse errors included in place). *)
val run_script : Host.t -> Board.t -> string -> string list
