(** The Zoomie debug session: the software half of the Debug Controller.

    Every operation travels through the board's JTAG path — control
    registers are written by state injection, status registers read by
    readback — so modeled host times reflect real command traffic.  The
    API mirrors a software debugger: pause, resume, step, breakpoints,
    watchpoints, inspect and mutate state, snapshot and replay. *)

open Zoomie_rtl
module Board = Zoomie_bitstream.Board

type t

(** Attach to the wrapped MUT instance at hierarchical path [mut_path] on a
    programmed board.

    The session binds to the design configured at attach time.
    (Re)programming the board — including a VTI partial reconfiguration —
    swaps in a new netlist and logic-location map, so attach again
    afterwards, exactly as a hardware debugger reconnects after
    reprogramming.

    [site_map] lets sessions sharing one configured design (a hub's, all
    attached to the same board) reuse one prebuilt index instead of each
    rebuilding it — it must describe the board's current payload. *)
val attach :
  ?site_map:Readback.site_map ->
  Board.t ->
  info:Controller.info ->
  mut_path:string ->
  t

(** The trigger unit's watched signals (for UIs encoding break values). *)
val watches : t -> Trigger.watch list

(** Whether any assertions are compiled into the wrapper (their
    breakpoints can stop a [step] before its cycle budget). *)
val has_assertions : t -> bool

(** {1 Introspection (for multiplexing front-ends)} *)

val board : t -> Board.t

val mut_path : t -> string

val site_map : t -> Readback.site_map

(** Full hierarchical name of a MUT register given its original name
    (the wrapper inserts the [mut] instance level). *)
val full_register_name : t -> string -> string

(** Readback plan covering the named MUT registers (original names) —
    what a coalescer merges across sessions.
    @raise Readback.Readback_error when any name is unknown. *)
val register_plan : t -> string list -> Readback.plan

(** Current stop-poll granularity (design cycles between status reads). *)
val poll_chunk : t -> int

(** The granularity polling starts at (and resets to on a stop). *)
val initial_poll_chunk : int

(** {1 Run control} *)

(** Has a breakpoint latched a stop? (One status-register readback.) *)
val is_stopped : t -> bool

type cause = {
  value_bp : bool;
  cycle_bp : bool;
  assertion_bp : bool;
  watch_bp : bool;
  assert_mask : Bits.t option;
      (** per-assertion violation bits, when assertions are compiled in *)
}

val stop_cause : t -> cause

(** Names of the assertions whose breakpoints have fired. *)
val fired_assertions : t -> string list

(** Design cycles the MUT has executed (the controller's counter). *)
val mut_cycles : t -> int

(** Pause the MUT from the host (e.g. on a perceived hang). *)
val pause : t -> unit

(** Resume execution; clears latched stop conditions. *)
val resume : t -> unit

(** Let the FPGA run up to [max_cycles] free-clock cycles, polling for a
    stop; [true] when a breakpoint fired within the budget.  Polling is
    adaptive: each idle poll doubles {!poll_chunk} (capped), and a stop
    resets it to {!initial_poll_chunk}, so long idle runs cost
    logarithmically many status readbacks. *)
val run_until_stop : ?max_cycles:int -> t -> bool

(** Execute exactly [n] MUT cycles then stop (gdb's [until]). *)
val step : t -> int -> unit

(** {1 Breakpoints and watchpoints — all armed at runtime via injection} *)

(** Stop when all (watched signal, value) pairs match simultaneously. *)
val break_on_all : t -> (string * Bits.t) list -> unit

(** Stop when any one (watched signal, value) pair matches. *)
val break_on_any : t -> (string * Bits.t) list -> unit

val clear_value_breakpoints : t -> unit

(** Stop in the cycle a watched signal changes value (takes effect from the
    first executed cycle after arming). *)
val watch_on : t -> string list -> unit

val watch_off : t -> string list -> unit

(** Enable/disable compiled-in assertion breakpoints by index. *)
val set_assertion_enables : t -> bool list -> unit

(** {1 State access (paper 3.2, 3.3)} *)

(** Every register inside the wrapped module, by hierarchical name, via
    SLR-aware readback. *)
val read_state : t -> (string * Bits.t) list

(** One MUT register by its original (unwrapped) name. *)
val read_register : t -> string -> Bits.t

(** Overwrite a MUT register (state injection; no recompilation). *)
val write_register : t -> string -> Bits.t -> unit

(** {1 Batched (63-lane) fuzz-farm access}

    A lazily compiled {!Zoomie_synth.Netsim_batch} shadow of the loaded
    design runs 63 independent stimulus scenarios per settle beside the
    live board model.  It is entirely off-cable — probing it charges no
    JTAG time — which is what makes fuzz campaigns over the MUT
    tractable.  The shadow is dropped whenever the board is
    (re)configured. *)

(** The board's batch shadow model ({!Board.batch_sim}). *)
val batch : t -> Zoomie_synth.Netsim_batch.t

(** Advance the shadow model [n] design-clock cycles in all 63 lanes. *)
val run_batch : t -> int -> unit

(** Read a MUT register by its original name as one lane sees it — the
    per-lane demux of {!read_register}. *)
val read_register_lane : t -> lane:int -> string -> Bits.t

(** Overwrite a MUT register in one lane only. *)
val write_register_lane : t -> lane:int -> string -> Bits.t -> unit

(** Read the full contents of a MUT memory by its original name. *)
val read_memory : t -> string -> Bits.t array

(** Overwrite MUT memory words: [(address, value)] pairs. *)
val write_memory : t -> string -> (int * Bits.t) list -> unit

(** Snapshot the MUT's registers and memories as configuration frames. *)
val snapshot : t -> Readback.snapshot

(** Replay a snapshot, leaving the rest of the design untouched. *)
val restore : t -> Readback.snapshot -> unit

(** Modeled host-side seconds spent on JTAG so far. *)
val jtag_seconds : t -> float

(** {1 Runtime waveform capture}

    The software-debugger upgrade over an ILA: probes and window chosen
    {e at runtime}, against an already-paused design.  [trace t ~cycles]
    single-steps the MUT [cycles] times, reading back the registers whose
    original name satisfies [signals] (default: all) after every step.
    The result exports as standard VCD ({!Wave.write}).  Each traced
    cycle is real JTAG traffic, so wide traces of long windows are slow —
    exactly the §3.2 trade-off of visibility against cable time. *)
val trace : ?signals:(string -> bool) -> t -> cycles:int -> Wave.t

(** Registers that differ between two {!read_state} results:
    [(name, before, after)], canonically sorted by full register name
    (independent of input order — replay-divergence reports and
    [when-did]'s binary search compare diffs structurally); a [None] side
    means the name was absent there.  Pure function — handy for "what
    moved while I stepped" interrogation. *)
val diff_states :
  (string * Bits.t) list ->
  (string * Bits.t) list ->
  (string * Bits.t option * Bits.t option) list
