(** State extraction and injection over JTAG (§3.2, §3.3, §4.7).

    Readback plans enumerate exactly the configuration columns that hold
    MUT state; the SLR-aware executor hops the BOUT ring to the owning SLR,
    issues GCAPTURE, reads only those columns and matches the returned bits
    against RTL register names using the toolchain's logic-location
    metadata.  The unoptimized baseline scans entire SLRs — the Table 3
    comparison.

    Injection is a read-modify-write of the owning frames followed by
    GRESTORE; both paths clear the CTL0 GSR-mask bit first, because partial
    reconfiguration leaves it set and capture would otherwise skip the
    static region (§4.7). *)

open Zoomie_fabric
module Board = Zoomie_bitstream.Board
module Program = Zoomie_bitstream.Program
module Netlist = Zoomie_synth.Netlist

type column = { c_slr : int; c_row : int; c_col : int; c_frames : int }

type plan = { columns : column list; total_frames : int }

let frames_in_column device ~slr ~col =
  let s = Device.slr device slr in
  Geometry.frames_per_column s.Device.layout.Geometry.columns.(col)

(* Columns containing any FF (or memory site) whose register name passes
   [select]. *)
let plan_for device (netlist : Netlist.t) (locmap : Loc.map) ~select =
  let cols = Hashtbl.create 64 in
  let note slr row col = Hashtbl.replace cols (slr, row, col) () in
  Array.iteri
    (fun i (site : Loc.ff_site) ->
      let name, _ = netlist.Netlist.ff_names.(i) in
      if select name then note site.Loc.f_slr site.Loc.f_row site.Loc.f_col)
    locmap.Loc.ff_sites;
  Array.iteri
    (fun mi placement ->
      let name = netlist.Netlist.mems.(mi).Netlist.mem_name in
      if select name then
        match placement with
        | Loc.In_bram sites ->
          Array.iter
            (fun (s : Loc.bram_site) -> note s.Loc.b_slr s.Loc.b_row s.Loc.b_col)
            sites
        | Loc.In_lutram sites ->
          Array.iter
            (fun (s : Loc.lut_site) -> note s.Loc.l_slr s.Loc.l_row s.Loc.l_col)
            sites)
    locmap.Loc.mem_placements;
  let columns =
    Hashtbl.fold
      (fun (slr, row, col) () acc ->
        { c_slr = slr; c_row = row; c_col = col;
          c_frames = frames_in_column device ~slr ~col }
        :: acc)
      cols []
    |> List.sort compare
  in
  { columns; total_frames = List.fold_left (fun a c -> a + c.c_frames) 0 columns }

(** Unoptimized plan: every frame of SLR [slr] (what a naive tool reads). *)
let full_slr_plan device ~slr =
  let s = Device.slr device slr in
  let columns = ref [] in
  for row = s.Device.region_rows - 1 downto 0 do
    for col = Array.length s.Device.layout.Geometry.columns - 1 downto 0 do
      columns :=
        { c_slr = slr; c_row = row; c_col = col;
          c_frames = frames_in_column device ~slr ~col }
        :: !columns
    done
  done;
  {
    columns = !columns;
    total_frames = List.fold_left (fun a c -> a + c.c_frames) 0 !columns;
  }

let hops_to device slr =
  let n = Device.num_slrs device in
  (slr - device.Device.primary + n) mod n

(* Clear the CTL0 GSR-mask bit on [slr] (§4.7: partial reconfiguration does
   not restore it; readback must not be restricted to the dynamic region). *)
let emit_clear_mask prog = Program.set_ctl0 prog ~mask:1 ~value:0

(* Read all frames of the plan's columns on one SLR, capturing live state
   first.  Returns (key -> words) for that SLR. *)
let read_slr_frames board plan ~slr =
  let device = Board.device board in
  let cols = List.filter (fun c -> c.c_slr = slr) plan.columns in
  if cols = [] then []
  else begin
    let prog = Program.create () in
    Program.sync prog;
    Program.select_slr prog ~hops:(hops_to device slr);
    emit_clear_mask prog;
    Program.gcapture prog;
    List.iter
      (fun c ->
        Program.set_far prog ~row:c.c_row ~col:c.c_col ~minor:0;
        Program.read_frames prog ~words:(c.c_frames * Geometry.words_per_frame))
      cols;
    Program.desync prog;
    let data = Board.execute board (Program.words prog) in
    (* Slice the response back into frames, in request order. *)
    let out = ref [] in
    let pos = ref 0 in
    List.iter
      (fun c ->
        for minor = 0 to c.c_frames - 1 do
          let words =
            Array.sub data !pos Geometry.words_per_frame
          in
          pos := !pos + Geometry.words_per_frame;
          out := ((c.c_row, c.c_col, minor), words) :: !out
        done)
      cols;
    List.rev !out
  end

(* Bit lookup in the frame response. *)
let frame_bit frames key ~word ~bit =
  match List.assoc_opt key frames with
  | Some words -> (words.(word) lsr bit) land 1 = 1
  | None -> false

(** Execute a readback plan: returns register name -> value for every FF
    covered by the plan and passing [select]. *)
let read_registers board (netlist : Netlist.t) (locmap : Loc.map) plan ~select =
  let device = Board.device board in
  let slrs =
    List.sort_uniq compare (List.map (fun c -> c.c_slr) plan.columns)
  in
  ignore device;
  let per_slr = List.map (fun slr -> (slr, read_slr_frames board plan ~slr)) slrs in
  let values : (string, Zoomie_rtl.Bits.t) Hashtbl.t = Hashtbl.create 64 in
  (* Pre-size each register from its highest bit index. *)
  let widths = Hashtbl.create 64 in
  Array.iter
    (fun (name, bit) ->
      if select name then
        Hashtbl.replace widths name
          (max (bit + 1) (try Hashtbl.find widths name with Not_found -> 1)))
    netlist.Netlist.ff_names;
  Array.iteri
    (fun i (site : Loc.ff_site) ->
      let name, bit = netlist.Netlist.ff_names.(i) in
      if select name then
        match List.assoc_opt site.Loc.f_slr per_slr with
        | None -> ()
        | Some frames ->
          let minor, word, fbit = Loc.ff_frame_bit site in
          let covered =
            List.mem_assoc (site.Loc.f_row, site.Loc.f_col, minor) frames
          in
          if covered then begin
            let v = frame_bit frames (site.Loc.f_row, site.Loc.f_col, minor) ~word ~bit:fbit in
            let cur =
              match Hashtbl.find_opt values name with
              | Some b -> b
              | None -> Zoomie_rtl.Bits.zero (Hashtbl.find widths name)
            in
            Hashtbl.replace values name
              (if v then Zoomie_rtl.Bits.set cur bit true else cur)
          end)
    locmap.Loc.ff_sites;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) values []
  |> List.sort compare

(** Inject new values into registers: capture, rewrite the owning frames,
    restore (§3.3).  [updates] maps full hierarchical register names to new
    values. *)
let inject_registers board (netlist : Netlist.t) (locmap : Loc.map)
    (updates : (string * Zoomie_rtl.Bits.t) list) =
  let device = Board.device board in
  let want = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace want n v) updates;
  let select name = Hashtbl.mem want name in
  let plan = plan_for device netlist locmap ~select in
  let slrs = List.sort_uniq compare (List.map (fun c -> c.c_slr) plan.columns) in
  List.iter
    (fun slr ->
      (* Capture + read the affected frames. *)
      let frames = read_slr_frames board plan ~slr in
      (* Modify the FF bits we own. *)
      let frames = List.map (fun (k, w) -> (k, Array.copy w)) frames in
      Array.iteri
        (fun i (site : Loc.ff_site) ->
          if site.Loc.f_slr = slr then begin
            let name, bit = netlist.Netlist.ff_names.(i) in
            match Hashtbl.find_opt want name with
            | Some v when bit < Zoomie_rtl.Bits.width v ->
              let minor, word, fbit = Loc.ff_frame_bit site in
              (match List.assoc_opt (site.Loc.f_row, site.Loc.f_col, minor) frames with
              | Some words ->
                if Zoomie_rtl.Bits.get v bit then
                  words.(word) <- words.(word) lor (1 lsl fbit)
                else words.(word) <- words.(word) land lnot (1 lsl fbit)
              | None -> ())
            | _ -> ()
          end)
        locmap.Loc.ff_sites;
      (* Write back and restore. *)
      let prog = Program.create () in
      Program.sync prog;
      Program.select_slr prog ~hops:(hops_to device slr);
      emit_clear_mask prog;
      List.iter
        (fun ((row, col, minor), words) ->
          Program.set_far prog ~row ~col ~minor;
          Program.write_frames prog [ words ])
        frames;
      Program.grestore prog;
      Program.desync prog;
      ignore (Board.execute board (Program.words prog)))
    slrs

(** Full-state snapshot of the planned columns (registers and memories, as
    raw frames) — replayable later with {!restore_snapshot} (§3.3). *)
type snapshot = {
  snap_frames : (int * ((int * int * int) * int array) list) list;  (* per SLR *)
  snap_cycle : int;
}

let take_snapshot board plan =
  let slrs = List.sort_uniq compare (List.map (fun c -> c.c_slr) plan.columns) in
  {
    snap_frames = List.map (fun slr -> (slr, read_slr_frames board plan ~slr)) slrs;
    snap_cycle = Board.fpga_cycles board;
  }

let restore_snapshot board (snap : snapshot) =
  let device = Board.device board in
  List.iter
    (fun (slr, frames) ->
      let prog = Program.create () in
      Program.sync prog;
      Program.select_slr prog ~hops:(hops_to device slr);
      emit_clear_mask prog;
      (* Refresh all frames with the current live state first, so the
         GRESTORE below only changes what the snapshot covers — "leaving
         untouched regions intact" (§4.7). *)
      Program.gcapture prog;
      List.iter
        (fun ((row, col, minor), words) ->
          Program.set_far prog ~row ~col ~minor;
          Program.write_frames prog [ words ])
        frames;
      Program.grestore prog;
      Program.desync prog;
      ignore (Board.execute board (Program.words prog)))
    snap.snap_frames

(* --- snapshot persistence ------------------------------------------- *)

(* A simple self-describing binary format (magic + version + counted
   sections), so long-running emulation campaigns can bank snapshots on
   disk and replay them later (§3.3's trillions-of-cycles use case). *)

let snapshot_magic = 0x5A4F4F4D (* "ZOOM" *)
let snapshot_version = 1

let save_snapshot (snap : snapshot) path =
  let oc = open_out_bin path in
  let w32 v = output_binary_int oc v in
  w32 snapshot_magic;
  w32 snapshot_version;
  w32 snap.snap_cycle;
  w32 (List.length snap.snap_frames);
  List.iter
    (fun (slr, frames) ->
      w32 slr;
      w32 (List.length frames);
      List.iter
        (fun ((row, col, minor), words) ->
          w32 row;
          w32 col;
          w32 minor;
          w32 (Array.length words);
          Array.iter w32 words)
        frames)
    snap.snap_frames;
  close_out oc

exception Bad_snapshot of string

let load_snapshot path : snapshot =
  let ic =
    try open_in_bin path with Sys_error msg -> raise (Bad_snapshot msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let r32 () =
        try input_binary_int ic
        with End_of_file -> raise (Bad_snapshot "truncated snapshot")
      in
      if r32 () <> snapshot_magic then raise (Bad_snapshot "bad magic");
      if r32 () <> snapshot_version then raise (Bad_snapshot "bad version");
      let snap_cycle = r32 () in
      let n_slrs = r32 () in
      let snap_frames =
        List.init n_slrs (fun _ ->
            let slr = r32 () in
            let n = r32 () in
            ( slr,
              List.init n (fun _ ->
                  let row = r32 () in
                  let col = r32 () in
                  let minor = r32 () in
                  let len = r32 () in
                  ((row, col, minor), Array.init len (fun _ -> r32 () land 0xFFFFFFFF))) ))
      in
      { snap_frames; snap_cycle })

(* --- memory contents (3.2/3.3 cover memories, not just registers) ---- *)

(* Frame location of one memory bit, given its placement. *)
let mem_bit_location (m : Netlist.mem) placement ~addr ~bit =
  match placement with
  | Loc.In_bram sites ->
    let width_blocks = (m.Netlist.mem_width + 35) / 36 in
    let brow, bcol, within =
      Loc.bram_bit_position ~depth:m.Netlist.mem_depth ~addr ~bit
    in
    let ordinal = (brow * width_blocks) + bcol in
    if ordinal >= Array.length sites then None
    else begin
      let site = sites.(ordinal) in
      let minor, word, fbit = Geometry.bram_location ~tile:site.Loc.b_tile ~bit:within in
      Some (site.Loc.b_slr, (site.Loc.b_row, site.Loc.b_col, minor), word, fbit)
    end
  | Loc.In_lutram sites ->
    let depth_units = (m.Netlist.mem_depth + 63) / 64 in
    let depth_unit, bitcol, within = Loc.lutram_bit_position ~addr ~bit in
    let ordinal = (bitcol * depth_units) + depth_unit in
    if ordinal >= Array.length sites then None
    else begin
      let site = sites.(ordinal) in
      let minor, word, fbit =
        Geometry.lut_location ~tile:site.Loc.l_tile ~site:site.Loc.l_index
          ~bit:within
      in
      Some (site.Loc.l_slr, (site.Loc.l_row, site.Loc.l_col, minor), word, fbit)
    end

let find_mem (netlist : Netlist.t) name =
  let found = ref None in
  Array.iteri
    (fun mi (m : Netlist.mem) ->
      if m.Netlist.mem_name = name then found := Some (mi, m))
    netlist.Netlist.mems;
  match !found with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Readback: unknown memory %S" name)

(** Read the full contents of memory [name] through capture + frame
    readback. *)
let read_memory board (netlist : Netlist.t) (locmap : Loc.map) ~name =
  let device = Board.device board in
  let mi, m = find_mem netlist name in
  let placement = locmap.Loc.mem_placements.(mi) in
  let plan = plan_for device netlist locmap ~select:(fun n -> n = name) in
  let slrs = List.sort_uniq compare (List.map (fun c -> c.c_slr) plan.columns) in
  let per_slr = List.map (fun slr -> (slr, read_slr_frames board plan ~slr)) slrs in
  Array.init m.Netlist.mem_depth (fun addr ->
      let v = ref (Zoomie_rtl.Bits.zero m.Netlist.mem_width) in
      for bit = 0 to m.Netlist.mem_width - 1 do
        match mem_bit_location m placement ~addr ~bit with
        | None -> ()
        | Some (slr, key, word, fbit) -> (
          match List.assoc_opt slr per_slr with
          | None -> ()
          | Some frames ->
            if frame_bit frames key ~word ~bit:fbit then
              v := Zoomie_rtl.Bits.set !v bit true)
      done;
      !v)

(** Overwrite memory words (capture, rewrite frames, restore).  [updates]
    maps addresses to new values. *)
let inject_memory board (netlist : Netlist.t) (locmap : Loc.map) ~name
    (updates : (int * Zoomie_rtl.Bits.t) list) =
  let device = Board.device board in
  let mi, m = find_mem netlist name in
  let placement = locmap.Loc.mem_placements.(mi) in
  let plan = plan_for device netlist locmap ~select:(fun n -> n = name) in
  let slrs = List.sort_uniq compare (List.map (fun c -> c.c_slr) plan.columns) in
  ignore mi;
  List.iter
    (fun slr ->
      let frames = read_slr_frames board plan ~slr in
      let frames = List.map (fun (k, w) -> (k, Array.copy w)) frames in
      List.iter
        (fun (addr, value) ->
          if addr < 0 || addr >= m.Netlist.mem_depth then
            invalid_arg "Readback.inject_memory: address out of range";
          for bit = 0 to m.Netlist.mem_width - 1 do
            match mem_bit_location m placement ~addr ~bit with
            | Some (s, key, word, fbit) when s = slr -> (
              match List.assoc_opt key frames with
              | Some words ->
                if
                  bit < Zoomie_rtl.Bits.width value
                  && Zoomie_rtl.Bits.get value bit
                then words.(word) <- words.(word) lor (1 lsl fbit)
                else words.(word) <- words.(word) land lnot (1 lsl fbit)
              | None -> ())
            | _ -> ()
          done)
        updates;
      let prog = Program.create () in
      Program.sync prog;
      Program.select_slr prog ~hops:(hops_to device slr);
      emit_clear_mask prog;
      List.iter
        (fun ((row, col, minor), words) ->
          Program.set_far prog ~row ~col ~minor;
          Program.write_frames prog [ words ])
        frames;
      Program.grestore prog;
      Program.desync prog;
      ignore (Board.execute board (Program.words prog)))
    slrs
