(** State extraction and injection over JTAG (§3.2, §3.3, §4.7).

    Readback plans enumerate exactly the configuration columns that hold
    MUT state; the SLR-aware executor hops the BOUT ring to the owning SLR,
    issues GCAPTURE, reads only those columns and matches the returned bits
    against RTL register names using the toolchain's logic-location
    metadata.  The unoptimized baseline scans entire SLRs — the Table 3
    comparison.

    The host side is built around two indexes so the pause → readback →
    inject loop is lookup-O(1) end to end:

    - {!Frame_index}: the frame response, a hashtable keyed on
      [(slr, row, col, minor)] — replaces the association lists that made
      register extraction O(sites × frames).
    - {!site_map}: the per-design site map, built once from the netlist and
      logic-location map — register name → width and per-bit frame
      coordinates, memory name → placement columns — replacing the
      per-call rescans of every FF site.

    Readback never fabricates state: a selected register whose frames are
    missing from the response raises {!Readback_error} instead of reading
    back as zeros, and injection validates every target name up front.

    Injection is a read-modify-write of the owning frames followed by
    GRESTORE; both paths clear the CTL0 GSR-mask bit first, because partial
    reconfiguration leaves it set and capture would otherwise skip the
    static region (§4.7). *)

open Zoomie_fabric
module Board = Zoomie_bitstream.Board
module Program = Zoomie_bitstream.Program
module Netlist = Zoomie_synth.Netlist
module Obs = Zoomie_obs.Obs

(** Typed failure of the readback/injection engine: unknown register or
    memory names, and plans that do not cover the state they are asked to
    extract. *)
exception Readback_error of string

let readback_error fmt = Printf.ksprintf (fun s -> raise (Readback_error s)) fmt

(* --- the frame response index ---------------------------------------- *)

module Frame_index = struct
  (** (slr, row, col, minor) — the full frame address, across chiplets. *)
  type key = int * int * int * int

  (* [order] keeps insertion order (reversed) so write-back programs and
     snapshot files are emitted deterministically, in request order. *)
  type t = {
    tbl : (key, int array) Hashtbl.t;
    mutable order : key list;
  }

  let create ?(size = 256) () = { tbl = Hashtbl.create size; order = [] }

  let length t = Hashtbl.length t.tbl

  let mem t key = Hashtbl.mem t.tbl key

  let add t key words =
    if not (Hashtbl.mem t.tbl key) then t.order <- key :: t.order;
    Hashtbl.replace t.tbl key words

  let find t key = Hashtbl.find_opt t.tbl key

  (** [Some b] when the frame is present, [None] when the response does not
      cover it — the caller decides whether absence is an error. *)
  let bit t key ~word ~bit =
    match Hashtbl.find_opt t.tbl key with
    | Some words -> Some ((words.(word) lsr bit) land 1 = 1)
    | None -> None

  (** Set one bit in a covered frame; [false] when the frame is absent. *)
  let set_bit t key ~word ~bit v =
    match Hashtbl.find_opt t.tbl key with
    | None -> false
    | Some words ->
      if v then words.(word) <- words.(word) lor (1 lsl bit)
      else words.(word) <- words.(word) land lnot (1 lsl bit);
      true

  (** Iterate frames in insertion order. *)
  let iter f t =
    List.iter (fun k -> f k (Hashtbl.find t.tbl k)) (List.rev t.order)

  let fold f t acc =
    List.fold_left
      (fun acc k -> f k (Hashtbl.find t.tbl k) acc)
      acc (List.rev t.order)

  (** Deep copy (payload arrays are duplicated). *)
  let copy t =
    let c = create ~size:(max 16 (Hashtbl.length t.tbl)) () in
    iter (fun k words -> add c k (Array.copy words)) t;
    c

  (** The distinct SLRs covered, ascending. *)
  let slrs t =
    fold (fun (slr, _, _, _) _ acc -> if List.mem slr acc then acc else slr :: acc) t []
    |> List.sort compare

  (** Per-SLR association-list view [(row, col, minor) -> words], in
      insertion order — the seed representation, kept for differential
      testing and the micro-bench baseline. *)
  let to_assoc t ~slr =
    fold
      (fun (s, row, col, minor) words acc ->
        if s = slr then ((row, col, minor), words) :: acc else acc)
      t []
    |> List.rev
end

type column = { c_slr : int; c_row : int; c_col : int; c_frames : int }

type plan = {
  columns : column list;
  total_frames : int;
  selected : string array option;
      (* register names the plan was derived from (sorted), when known:
         extraction then iterates just these instead of scanning every
         register in the design — the difference between O(selected) and
         O(design) per readback on manycore-scale SoCs *)
}

let frames_in_column device ~slr ~col =
  let s = Device.slr device slr in
  Geometry.frames_per_column s.Device.layout.Geometry.columns.(col)

let plan_of_columns ?selected device cols =
  let columns =
    Hashtbl.fold
      (fun (slr, row, col) () acc ->
        { c_slr = slr; c_row = row; c_col = col;
          c_frames = frames_in_column device ~slr ~col }
        :: acc)
      cols []
    |> List.sort compare
  in
  { columns;
    total_frames = List.fold_left (fun a c -> a + c.c_frames) 0 columns;
    selected }

(* --- the per-design site map ----------------------------------------- *)

(* One register: its width, the frame coordinates of each bit, and the
   columns its FFs occupy (for planning). *)
type reg_entry = {
  re_width : int;
  re_sites : (int * Frame_index.key * int * int) array;
      (* (register bit, frame key, word, bit-in-word) *)
  re_cols : (int * int * int) list;  (* distinct (slr, row, col) *)
}

type site_map = {
  sm_device : Device.t;
  sm_netlist : Netlist.t;
  sm_locmap : Loc.map;
  sm_regs : (string, reg_entry) Hashtbl.t;
  sm_reg_names : string array;  (** all register names, sorted *)
  sm_mems : (string, int) Hashtbl.t;  (** memory name -> netlist index *)
  sm_mem_cols : (int * int * int) list array;  (** per netlist memory index *)
}

(** Build the per-design site map: one linear pass over the logic-location
    metadata, amortized across every subsequent readback/injection. *)
let site_map device (netlist : Netlist.t) (locmap : Loc.map) =
  let building : (string, int ref * (int * Frame_index.key * int * int) list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  Array.iteri
    (fun i (site : Loc.ff_site) ->
      let name, bit = netlist.Netlist.ff_names.(i) in
      let minor, word, fbit = Loc.ff_frame_bit site in
      let key = (site.Loc.f_slr, site.Loc.f_row, site.Loc.f_col, minor) in
      match Hashtbl.find_opt building name with
      | Some (width, sites) ->
        if bit + 1 > !width then width := bit + 1;
        sites := (bit, key, word, fbit) :: !sites
      | None -> Hashtbl.add building name (ref (max 1 (bit + 1)), ref [ (bit, key, word, fbit) ]))
    locmap.Loc.ff_sites;
  let sm_regs = Hashtbl.create (Hashtbl.length building) in
  Hashtbl.iter
    (fun name (width, sites) ->
      let cols = Hashtbl.create 4 in
      List.iter
        (fun (_, (slr, row, col, _), _, _) -> Hashtbl.replace cols (slr, row, col) ())
        !sites;
      Hashtbl.add sm_regs name
        {
          re_width = !width;
          re_sites = Array.of_list (List.rev !sites);
          re_cols = Hashtbl.fold (fun c () acc -> c :: acc) cols [];
        })
    building;
  let sm_reg_names =
    let a = Array.make (Hashtbl.length sm_regs) "" in
    let i = ref 0 in
    Hashtbl.iter (fun name _ -> a.(!i) <- name; incr i) sm_regs;
    Array.sort compare a;
    a
  in
  let sm_mems = Hashtbl.create 16 in
  let sm_mem_cols =
    Array.mapi
      (fun mi placement ->
        let name = netlist.Netlist.mems.(mi).Netlist.mem_name in
        Hashtbl.replace sm_mems name mi;
        let cols = Hashtbl.create 4 in
        (match placement with
        | Loc.In_bram sites ->
          Array.iter
            (fun (s : Loc.bram_site) ->
              Hashtbl.replace cols (s.Loc.b_slr, s.Loc.b_row, s.Loc.b_col) ())
            sites
        | Loc.In_lutram sites ->
          Array.iter
            (fun (s : Loc.lut_site) ->
              Hashtbl.replace cols (s.Loc.l_slr, s.Loc.l_row, s.Loc.l_col) ())
            sites);
        Hashtbl.fold (fun c () acc -> c :: acc) cols [])
      locmap.Loc.mem_placements
  in
  { sm_device = device; sm_netlist = netlist; sm_locmap = locmap;
    sm_regs; sm_reg_names; sm_mems; sm_mem_cols }

let register_names sm = Array.to_list sm.sm_reg_names

let register_width sm name =
  Option.map (fun e -> e.re_width) (Hashtbl.find_opt sm.sm_regs name)

let known_register sm name = Hashtbl.mem sm.sm_regs name

let known_memory sm name = Hashtbl.mem sm.sm_mems name

(* --- planning (§4.6) -------------------------------------------------- *)

(** The minimal frame set covering every FF/memory whose name satisfies
    [select] — the SLR-aware plan of Table 3, from the precomputed map. *)
let plan_of_select sm ~select =
  let cols = Hashtbl.create 64 in
  let matched = ref [] in
  Array.iter
    (fun name ->
      if select name then begin
        matched := name :: !matched;
        List.iter
          (fun c -> Hashtbl.replace cols c ())
          (Hashtbl.find sm.sm_regs name).re_cols
      end)
    sm.sm_reg_names;
  Array.iteri
    (fun mi (m : Netlist.mem) ->
      if select m.Netlist.mem_name then
        List.iter (fun c -> Hashtbl.replace cols c ()) sm.sm_mem_cols.(mi))
    sm.sm_netlist.Netlist.mems;
  (* [sm_reg_names] is sorted, so the reversed accumulator is too. *)
  let selected = Array.of_list (List.rev !matched) in
  plan_of_columns ~selected sm.sm_device cols

(** Plan covering exactly the named registers/memories.
    @raise Readback_error when any name is unknown. *)
let plan_of_names sm names =
  let unknown =
    List.filter (fun n -> not (known_register sm n || known_memory sm n)) names
  in
  (match unknown with
  | [] -> ()
  | l ->
    readback_error "unknown register or memory name%s: %s"
      (if List.length l > 1 then "s" else "")
      (String.concat ", " (List.map (Printf.sprintf "%S") l)));
  let cols = Hashtbl.create 16 in
  List.iter
    (fun name ->
      (match Hashtbl.find_opt sm.sm_regs name with
      | Some e -> List.iter (fun c -> Hashtbl.replace cols c ()) e.re_cols
      | None -> ());
      match Hashtbl.find_opt sm.sm_mems name with
      | Some mi -> List.iter (fun c -> Hashtbl.replace cols c ()) sm.sm_mem_cols.(mi)
      | None -> ())
    names;
  let selected =
    Array.of_list (List.sort_uniq compare (List.filter (known_register sm) names))
  in
  plan_of_columns ~selected sm.sm_device cols

(** Union of several plans, deduplicating shared columns — the coalescing
    primitive: k clients' overlapping selections become one sweep whose
    frame count is the size of the union, not the sum.  A column present
    in several plans is kept once with the largest frame count; [selected]
    survives only when every input plan carries it (one anonymous plan
    forces full-design extraction semantics). *)
let merge_plans plans =
  let cols = Hashtbl.create 64 in
  List.iter
    (fun p ->
      List.iter
        (fun c ->
          let key = (c.c_slr, c.c_row, c.c_col) in
          match Hashtbl.find_opt cols key with
          | Some frames when frames >= c.c_frames -> ()
          | _ -> Hashtbl.replace cols key c.c_frames)
        p.columns)
    plans;
  let columns =
    Hashtbl.fold
      (fun (slr, row, col) frames acc ->
        { c_slr = slr; c_row = row; c_col = col; c_frames = frames } :: acc)
      cols []
    |> List.sort compare
  in
  let selected =
    let rec union acc = function
      | [] -> Some (Array.of_list (List.sort_uniq compare acc))
      | { selected = None; _ } :: _ -> None
      | { selected = Some names; _ } :: rest ->
        union (Array.to_list names @ acc) rest
    in
    union [] plans
  in
  { columns;
    total_frames = List.fold_left (fun a c -> a + c.c_frames) 0 columns;
    selected }

(* Columns containing any FF (or memory site) whose register name passes
   [select] — compatibility entry point; builds a throwaway site map. *)
let plan_for device (netlist : Netlist.t) (locmap : Loc.map) ~select =
  plan_of_select (site_map device netlist locmap) ~select

(** Unoptimized plan: every frame of SLR [slr] (what a naive tool reads). *)
let full_slr_plan device ~slr =
  let s = Device.slr device slr in
  let columns = ref [] in
  for row = s.Device.region_rows - 1 downto 0 do
    for col = Array.length s.Device.layout.Geometry.columns - 1 downto 0 do
      columns :=
        { c_slr = slr; c_row = row; c_col = col;
          c_frames = frames_in_column device ~slr ~col }
        :: !columns
    done
  done;
  {
    columns = !columns;
    total_frames = List.fold_left (fun a c -> a + c.c_frames) 0 !columns;
    selected = None;
  }

let hops_to device slr =
  let n = Device.num_slrs device in
  (slr - device.Device.primary + n) mod n

let plan_slrs plan =
  List.sort_uniq compare (List.map (fun c -> c.c_slr) plan.columns)

(* Clear the CTL0 GSR-mask bit on [slr] (§4.7: partial reconfiguration does
   not restore it; readback must not be restricted to the dynamic region). *)
let emit_clear_mask prog = Program.set_ctl0 prog ~mask:1 ~value:0

(* --- frame transport --------------------------------------------------- *)

(* The word stream the [slr] part of [plan] executes — one sweep: sync,
   hop to the owning SLR, clear the GSR mask, GCAPTURE, a FAR write and
   frame read per column, desync.  Factored out of the executor so the
   pricing path below prices exactly the words the board will see; the
   two can only drift if this function does. *)
let sweep_program device plan ~slr =
  let cols = List.filter (fun c -> c.c_slr = slr) plan.columns in
  if cols = [] then None
  else begin
    let prog = Program.create () in
    Program.sync prog;
    Program.select_slr prog ~hops:(hops_to device slr);
    emit_clear_mask prog;
    Program.gcapture prog;
    List.iter
      (fun c ->
        Program.set_far prog ~row:c.c_row ~col:c.c_col ~minor:0;
        Program.read_frames prog ~words:(c.c_frames * Geometry.words_per_frame))
      cols;
    Program.desync prog;
    Some (cols, Program.words prog)
  end

(** Modeled standalone cost of the [slr] part of [plan]: the exact word
    stream the executor would emit, priced through the transport meter's
    cost function ({!Board.price_stream}).  0 when the plan has no
    columns on [slr]. *)
let slr_sweep_cost board plan ~slr =
  match sweep_program (Board.device board) plan ~slr with
  | None -> 0.0
  | Some (_, words) -> Board.price_stream words

(** Modeled standalone cost of executing [plan] alone: per-SLR sweep
    prices summed in execution order — the same per-transfer batching the
    meter itself accumulates, so this equals the {!Board.jtag_seconds}
    delta a lone execution of the plan produces. *)
let plan_cost board plan =
  List.fold_left
    (fun acc slr -> acc +. slr_sweep_cost board plan ~slr)
    0.0 (plan_slrs plan)

(* Read all frames of the plan's columns on one SLR, capturing live state
   first, and slice the response into [into] keyed by full frame address. *)
let read_slr_frames_into into board plan ~slr =
  match sweep_program (Board.device board) plan ~slr with
  | None -> ()
  | Some (cols, words) ->
    let data =
      Obs.span ~cat:"readback"
        ~mclock:(fun () -> Board.jtag_seconds board)
        (Printf.sprintf "readback.sweep slr%d" slr)
        (fun () -> Board.execute board words)
    in
    (* Slice the response back into frames, in request order. *)
    let pos = ref 0 in
    List.iter
      (fun c ->
        for minor = 0 to c.c_frames - 1 do
          let w = Array.sub data !pos Geometry.words_per_frame in
          pos := !pos + Geometry.words_per_frame;
          Frame_index.add into (slr, c.c_row, c.c_col, minor) w
        done)
      cols

(** Execute the [slr] part of a plan: GCAPTURE, hop to the SLR, read each
    column; returns the indexed frame response. *)
let read_slr_frames board plan ~slr =
  let idx = Frame_index.create () in
  read_slr_frames_into idx board plan ~slr;
  idx

(** Execute a whole plan, SLR by SLR, into one frame index. *)
let read_plan_frames board plan =
  Obs.span ~cat:"readback"
    ~mclock:(fun () -> Board.jtag_seconds board)
    "readback.plan"
    (fun () ->
      let idx = Frame_index.create () in
      List.iter
        (fun slr -> read_slr_frames_into idx board plan ~slr)
        (plan_slrs plan);
      idx)

(* Emit the write-back half of a read-modify-write: address each frame of
   one SLR and push its (modified) words, then GRESTORE. *)
let write_slr_frames board frames ~slr =
  let device = Board.device board in
  let prog = Program.create () in
  Program.sync prog;
  Program.select_slr prog ~hops:(hops_to device slr);
  emit_clear_mask prog;
  Frame_index.iter
    (fun (s, row, col, minor) words ->
      if s = slr then begin
        Program.set_far prog ~row ~col ~minor;
        Program.write_frames prog [ words ]
      end)
    frames;
  Program.grestore prog;
  Program.desync prog;
  ignore (Board.execute board (Program.words prog))

(* --- register extraction ---------------------------------------------- *)

(** Pure host-side parse: reassemble every register satisfying [select]
    from an indexed frame response.  Lookup-O(1) per FF bit.
    @raise Readback_error when a selected register has any bit whose frame
    is absent from the response — partial coverage must never read back as
    silent zeros. *)
(* Consecutive bits of a register usually live in the same frame, so one
   (key -> words) memo per register removes most hashtable traffic. *)
let extract_over names sm frames ~select =
  let out = ref [] in
  Array.iter
    (fun name ->
      if select name then begin
        let e = Hashtbl.find sm.sm_regs name in
        let v = Zoomie_rtl.Bits.zero e.re_width in
        let last_key = ref (-1, -1, -1, -1) in
        let last_words = ref [||] in
        Array.iter
          (fun (bit, key, word, fbit) ->
            if key <> !last_key then begin
              (match Frame_index.find frames key with
              | Some words -> last_words := words
              | None ->
                let slr, row, col, minor = key in
                readback_error
                  "register %S bit %d not covered by the readback plan (frame \
                   slr=%d row=%d col=%d minor=%d missing from the response)"
                  name bit slr row col minor);
              last_key := key
            end;
            if ((!last_words).(word) lsr fbit) land 1 = 1 then
              Zoomie_rtl.Bits.set_inplace v bit true)
          e.re_sites;
        out := (name, v) :: !out
      end)
    names;
  List.rev !out

let extract_registers sm frames ~select = extract_over sm.sm_reg_names sm frames ~select

(** Demultiplex one client's register list out of a (possibly merged)
    frame response: validate the names, then extract exactly those — the
    per-session half of a coalesced sweep.
    @raise Readback_error on an unknown name or a frame the response does
    not cover. *)
let extract_registers_named sm frames ~names =
  (match List.filter (fun n -> not (known_register sm n)) names with
  | [] -> ()
  | bad ->
    readback_error "unknown register%s: %s"
      (if List.length bad > 1 then "s" else "")
      (String.concat ", " (List.map (Printf.sprintf "%S") bad)));
  let ordered = Array.of_list (List.sort_uniq compare names) in
  extract_over ordered sm frames ~select:(fun _ -> true)

(** Execute a readback plan against a prebuilt site map: register name ->
    value for every FF passing [select].  When the plan records the names
    it was derived from ({!plan_of_select}/{!plan_of_names}), only those
    registers are considered — [select] must not widen beyond the plan.
    @raise Readback_error when the plan does not fully cover a selected
    register. *)
let read_registers_indexed board sm plan ~select =
  let names =
    match plan.selected with Some a -> a | None -> sm.sm_reg_names
  in
  extract_over names sm (read_plan_frames board plan) ~select

(** Compatibility entry point (rebuilds the site map each call). *)
let read_registers board (netlist : Netlist.t) (locmap : Loc.map) plan ~select =
  read_registers_indexed board (site_map (Board.device board) netlist locmap) plan ~select

(* --- register injection ------------------------------------------------ *)

(** Inject new values into registers: capture, rewrite the owning frames,
    restore (§3.3).  [updates] maps full hierarchical register names to new
    values.  All names are validated up front:
    @raise Readback_error when any update names an unknown register. *)
let inject_registers_indexed board sm (updates : (string * Zoomie_rtl.Bits.t) list) =
  (match List.filter (fun (n, _) -> not (known_register sm n)) updates with
  | [] -> ()
  | bad ->
    readback_error "inject_registers: unknown register%s %s"
      (if List.length bad > 1 then "s" else "")
      (String.concat ", " (List.map (fun (n, _) -> Printf.sprintf "%S" n) bad)));
  let plan = plan_of_names sm (List.map fst updates) in
  List.iter
    (fun slr ->
      (* Capture + read the affected frames (fresh arrays: safe to edit). *)
      let frames = read_slr_frames board plan ~slr in
      (* Modify the FF bits we own. *)
      List.iter
        (fun (name, v) ->
          let e = Hashtbl.find sm.sm_regs name in
          Array.iter
            (fun (bit, key, word, fbit) ->
              let s, row, col, minor = key in
              if s = slr && bit < Zoomie_rtl.Bits.width v then
                if
                  not
                    (Frame_index.set_bit frames key ~word ~bit:fbit
                       (Zoomie_rtl.Bits.get v bit))
                then
                  readback_error
                    "inject_registers: frame slr=%d row=%d col=%d minor=%d of \
                     register %S missing from the capture response"
                    s row col minor name)
            e.re_sites)
        updates;
      (* Write back and restore. *)
      write_slr_frames board frames ~slr)
    (plan_slrs plan)

(** Compatibility entry point (rebuilds the site map each call). *)
let inject_registers board (netlist : Netlist.t) (locmap : Loc.map) updates =
  inject_registers_indexed board (site_map (Board.device board) netlist locmap) updates

(** Full-state snapshot of the planned columns (registers and memories, as
    raw frames) — replayable later with {!restore_snapshot} (§3.3). *)
type snapshot = {
  snap_frames : Frame_index.t;
  snap_cycle : int;
}

let take_snapshot board plan =
  {
    snap_frames = read_plan_frames board plan;
    snap_cycle = Board.fpga_cycles board;
  }

let restore_snapshot board (snap : snapshot) =
  let device = Board.device board in
  List.iter
    (fun slr ->
      let prog = Program.create () in
      Program.sync prog;
      Program.select_slr prog ~hops:(hops_to device slr);
      emit_clear_mask prog;
      (* Refresh all frames with the current live state first, so the
         GRESTORE below only changes what the snapshot covers — "leaving
         untouched regions intact" (§4.7). *)
      Program.gcapture prog;
      Frame_index.iter
        (fun (s, row, col, minor) words ->
          if s = slr then begin
            Program.set_far prog ~row ~col ~minor;
            Program.write_frames prog [ words ]
          end)
        snap.snap_frames;
      Program.grestore prog;
      Program.desync prog;
      ignore (Board.execute board (Program.words prog)))
    (Frame_index.slrs snap.snap_frames)

(* --- snapshot persistence ------------------------------------------- *)

(* A simple self-describing binary format (magic + version + counted
   sections), so long-running emulation campaigns can bank snapshots on
   disk and replay them later (§3.3's trillions-of-cycles use case).

   v1 stored the cycle counter as a single 32-bit field, which truncated
   campaigns past 2³¹ cycles; v2 stores it as two 32-bit halves.  v1 files
   still load (with the cycle masked to its unsigned 32-bit value). *)

let snapshot_magic = 0x5A4F4F4D (* "ZOOM" *)
let snapshot_version = 2

(** Emit one snapshot onto an (already binary-mode) channel — the
    building block {!save_snapshot} wraps, also used by recorder formats
    that embed checkpoints inline in a larger stream. *)
let output_snapshot oc (snap : snapshot) =
  let w32 v = output_binary_int oc v in
  w32 snapshot_magic;
  w32 snapshot_version;
  (* Cycle counter as (high, low) 32-bit halves: §3.3 campaigns run for
     trillions of cycles, far past what one output_binary_int holds. *)
  w32 ((snap.snap_cycle lsr 32) land 0xFFFFFFFF);
  w32 (snap.snap_cycle land 0xFFFFFFFF);
  let slrs = Frame_index.slrs snap.snap_frames in
  w32 (List.length slrs);
  List.iter
    (fun slr ->
      let frames = Frame_index.to_assoc snap.snap_frames ~slr in
      w32 slr;
      w32 (List.length frames);
      List.iter
        (fun ((row, col, minor), words) ->
          w32 row;
          w32 col;
          w32 minor;
          w32 (Array.length words);
          Array.iter w32 words)
        frames)
    slrs

let save_snapshot (snap : snapshot) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_snapshot oc snap)

exception Bad_snapshot of string

(** Read one snapshot back off a channel, leaving the channel positioned
    just past it — the inverse of {!output_snapshot}.
    @raise Bad_snapshot on truncation or a bad magic/version. *)
let input_snapshot ic : snapshot =
  let r32 () =
    try input_binary_int ic
    with End_of_file -> raise (Bad_snapshot "truncated snapshot")
  in
  if r32 () <> snapshot_magic then raise (Bad_snapshot "bad magic");
  let version = r32 () in
  let snap_cycle =
    match version with
    | 1 ->
      (* v1: one signed 32-bit field; mask to the unsigned value the
         writer actually recorded. *)
      r32 () land 0xFFFFFFFF
    | 2 ->
      let hi = r32 () land 0xFFFFFFFF in
      let lo = r32 () land 0xFFFFFFFF in
      (hi lsl 32) lor lo
    | _ -> raise (Bad_snapshot "bad version")
  in
  let n_slrs = r32 () in
  let snap_frames = Frame_index.create () in
  for _ = 1 to n_slrs do
    let slr = r32 () in
    let n = r32 () in
    for _ = 1 to n do
      let row = r32 () in
      let col = r32 () in
      let minor = r32 () in
      let len = r32 () in
      Frame_index.add snap_frames (slr, row, col, minor)
        (Array.init len (fun _ -> r32 () land 0xFFFFFFFF))
    done
  done;
  { snap_frames; snap_cycle }

let load_snapshot path : snapshot =
  let ic =
    try open_in_bin path with Sys_error msg -> raise (Bad_snapshot msg)
  in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_snapshot ic)

(* --- memory contents (3.2/3.3 cover memories, not just registers) ---- *)

(* Frame location of one memory bit, given its placement. *)
let mem_bit_location (m : Netlist.mem) placement ~addr ~bit =
  match placement with
  | Loc.In_bram sites ->
    let width_blocks = (m.Netlist.mem_width + 35) / 36 in
    let brow, bcol, within =
      Loc.bram_bit_position ~depth:m.Netlist.mem_depth ~addr ~bit
    in
    let ordinal = (brow * width_blocks) + bcol in
    if ordinal >= Array.length sites then None
    else begin
      let site = sites.(ordinal) in
      let minor, word, fbit = Geometry.bram_location ~tile:site.Loc.b_tile ~bit:within in
      Some ((site.Loc.b_slr, site.Loc.b_row, site.Loc.b_col, minor), word, fbit)
    end
  | Loc.In_lutram sites ->
    let depth_units = (m.Netlist.mem_depth + 63) / 64 in
    let depth_unit, bitcol, within = Loc.lutram_bit_position ~addr ~bit in
    let ordinal = (bitcol * depth_units) + depth_unit in
    if ordinal >= Array.length sites then None
    else begin
      let site = sites.(ordinal) in
      let minor, word, fbit =
        Geometry.lut_location ~tile:site.Loc.l_tile ~site:site.Loc.l_index
          ~bit:within
      in
      Some ((site.Loc.l_slr, site.Loc.l_row, site.Loc.l_col, minor), word, fbit)
    end

(* Memory lookup by name. @raise Readback_error when unknown. *)
let find_mem_indexed sm name =
  match Hashtbl.find_opt sm.sm_mems name with
  | Some mi -> (mi, sm.sm_netlist.Netlist.mems.(mi))
  | None -> readback_error "unknown memory %S" name

(* Plan covering exactly one placed memory. *)
let mem_plan sm mi =
  let cols = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace cols c ()) sm.sm_mem_cols.(mi);
  plan_of_columns sm.sm_device cols

(** Read the full contents of memory [name] through capture + frame
    readback.  @raise Readback_error when the name is unknown or a frame
    holding memory state is missing from the response. *)
let read_memory_indexed board sm ~name =
  let mi, m = find_mem_indexed sm name in
  let placement = sm.sm_locmap.Loc.mem_placements.(mi) in
  let frames = read_plan_frames board (mem_plan sm mi) in
  Array.init m.Netlist.mem_depth (fun addr ->
      let v = Zoomie_rtl.Bits.zero m.Netlist.mem_width in
      for bit = 0 to m.Netlist.mem_width - 1 do
        match mem_bit_location m placement ~addr ~bit with
        | None -> ()
        | Some (key, word, fbit) -> (
          match Frame_index.bit frames key ~word ~bit:fbit with
          | Some b -> if b then Zoomie_rtl.Bits.set_inplace v bit true
          | None ->
            let slr, row, col, minor = key in
            readback_error
              "memory %S bit (%d,%d) not covered by the readback plan (frame \
               slr=%d row=%d col=%d minor=%d missing from the response)"
              name addr bit slr row col minor)
      done;
      v)

let read_memory board (netlist : Netlist.t) (locmap : Loc.map) ~name =
  read_memory_indexed board (site_map (Board.device board) netlist locmap) ~name

(** Overwrite memory words (capture, rewrite frames, restore).  [updates]
    maps addresses to new values.
    @raise Readback_error when the name is unknown. *)
let inject_memory_indexed board sm ~name (updates : (int * Zoomie_rtl.Bits.t) list) =
  let mi, m = find_mem_indexed sm name in
  let placement = sm.sm_locmap.Loc.mem_placements.(mi) in
  let plan = mem_plan sm mi in
  List.iter
    (fun (addr, _) ->
      if addr < 0 || addr >= m.Netlist.mem_depth then
        invalid_arg "Readback.inject_memory: address out of range")
    updates;
  List.iter
    (fun slr ->
      let frames = read_slr_frames board plan ~slr in
      List.iter
        (fun (addr, value) ->
          for bit = 0 to m.Netlist.mem_width - 1 do
            match mem_bit_location m placement ~addr ~bit with
            | Some (((s, _, _, _) as key), word, fbit) when s = slr ->
              let v =
                bit < Zoomie_rtl.Bits.width value && Zoomie_rtl.Bits.get value bit
              in
              ignore (Frame_index.set_bit frames key ~word ~bit:fbit v)
            | _ -> ()
          done)
        updates;
      write_slr_frames board frames ~slr)
    (plan_slrs plan)

let inject_memory board (netlist : Netlist.t) (locmap : Loc.map) ~name updates =
  inject_memory_indexed board (site_map (Board.device board) netlist locmap) ~name updates
