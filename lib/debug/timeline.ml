(* Session flight recorder + reverse debugging (see timeline.mli).

   Layering: this module sits *above* Repl — it intercepts the
   time-travel verbs and delegates everything else to Repl.execute,
   recording (command, response, mut-cycle) triples chained under a
   running MD5 digest, plus periodic full-state checkpoints.  Reverse
   execution is restore-nearest-checkpoint + deterministic forward
   re-execution: the board model is cycle-driven and every cycle the MUT
   executes is driven by a recorded command, so replaying the command
   prefix reproduces MUT state bit-for-bit (the free-running clock may
   differ — stop polling is adaptive — but the MUT is clock-gated the
   moment a breakpoint latches, so its state doesn't depend on it). *)

open Zoomie_rtl
module Board = Zoomie_bitstream.Board
module Obs = Zoomie_obs.Obs

exception Bad_recording of string

let bad_recording fmt =
  Printf.ksprintf (fun msg -> raise (Bad_recording msg)) fmt

type entry = {
  e_cmd : Repl.command;
  e_response : string;
  e_cycle : int;
  e_chain : string;
}

type checkpoint = {
  ck_index : int;
  ck_mut_cycle : int;
  ck_snap : Readback.snapshot;
}

type t = {
  tl_mut_path : string;
  tl_rig : string;
  tl_cadence : int;
  tl_start_cycle : int;
  tl_init_chain : string;
  mutable tl_entries : entry list;  (* newest first *)
  mutable tl_n_entries : int;
  mutable tl_checkpoints : checkpoint list;  (* newest first *)
  mutable tl_chain : string;
  mutable tl_last_cycle : int;  (* MUT cycle after the last entry *)
  mutable tl_last_ck_cycle : int;
  mutable tl_value_bp : bool;  (* a value breakpoint may be armed *)
  mutable tl_watched : string list;  (* armed watchpoints *)
}

type session = {
  ts_host : Host.t;
  ts_board : Board.t;
  ts_rig : string;
  mutable ts_timeline : t option;
}

let default_cadence = 4096

let session ?(rig = "custom") host board =
  { ts_host = host; ts_board = board; ts_rig = rig; ts_timeline = None }

let is_recording s = s.ts_timeline <> None

let entry_count s =
  match s.ts_timeline with Some tl -> tl.tl_n_entries | None -> 0

let checkpoint_count s =
  match s.ts_timeline with
  | Some tl -> List.length tl.tl_checkpoints
  | None -> 0

(* --- metrics (handles held once; recording is O(1) per event) -------- *)

let m_entries = Obs.counter "timeline.entries"
let m_checkpoints = Obs.counter "timeline.checkpoints"
let m_checkpoint_bytes = Obs.counter "timeline.checkpoint_bytes"
let m_restores = Obs.counter "timeline.restores"
let m_probes = Obs.counter "timeline.when_did_probes"
let g_cadence = Obs.gauge "timeline.cadence_cycles"
let h_restore = Obs.histogram "timeline.restore_jtag_s"
let h_reexec = Obs.histogram "timeline.reexec_jtag_s"

(* --- chain digest ---------------------------------------------------- *)

let chain_step prev cmd_text response cycle =
  Digest.to_hex
    (Digest.string (Printf.sprintf "%s|%s|%s|%d" prev cmd_text response cycle))

let init_chain ~mut_path ~rig ~cadence ~start_cycle =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "zoomie-timeline|%s|%s|%d|%d" mut_path rig cadence
          start_cycle))

(* On-disk size of one snapshot (mirrors Readback's binary layout):
   magic+version+cycle halves+slr count, 8 bytes per SLR section header,
   16 bytes per frame header + 4 per frame word. *)
let snapshot_bytes (snap : Readback.snapshot) =
  let header =
    20 + (8 * List.length (Readback.Frame_index.slrs snap.Readback.snap_frames))
  in
  Readback.Frame_index.fold
    (fun _ words acc -> acc + 16 + (4 * Array.length words))
    snap.Readback.snap_frames header

(* --- recording plumbing ---------------------------------------------- *)

(* Which commands enter the recording.  Everything that can influence or
   observe MUT state is in — including reads, whose responses verify the
   replay — while out-of-band verbs are not: Stats reports wall/cable
   meters (nondeterministic across runs), the trace/span toggles and
   [save] write host-side files, and the timeline verbs themselves are
   the recorder's own controls. *)
let recorded_cmd = function
  | Repl.Stats | Repl.Trace_ctl _ | Repl.Trace_dump _ | Repl.Save _
  | Repl.Nop | Repl.Record _ | Repl.Record_save _ | Repl.Record_status
  | Repl.Reverse_step _ | Repl.Reverse_continue _ | Repl.When_did _ ->
    false
  | _ -> true

(* Run one command the way Repl.run_script would render a failure, but
   keep the exception so callers preserve Repl.execute's contract. *)
let exec_catching host board cmd =
  match Repl.execute host board cmd with
  | r -> (r, None)
  | exception (Invalid_argument msg as e) -> ("error: " ^ msg, Some e)
  | exception (Readback.Readback_error msg as e) -> ("error: " ^ msg, Some e)
  | exception (Readback.Bad_snapshot msg as e) ->
    ("error: bad snapshot: " ^ msg, Some e)

(* MUT cycle counter after [cmd].  Cheap bookkeeping where the command
   semantics pin it; one real counter readback where they don't:
   run/continue/trace/load can stop anywhere (breakpoints, budgets,
   snapshot restores), and a step can stop early only when something
   else can fire mid-step (value breakpoints, watchpoints, compiled-in
   assertions). *)
let cycle_after s tl ~failed cmd =
  let read () = Host.mut_cycles s.ts_host in
  let step_may_stop_early () =
    tl.tl_value_bp || tl.tl_watched <> []
    || Host.has_assertions s.ts_host
  in
  match cmd with
  | Repl.Run _ | Repl.Continue _ | Repl.Trace _ | Repl.Load _ -> read ()
  | Repl.Step n ->
    if failed || step_may_stop_early () then read ()
    else tl.tl_last_cycle + n
  | _ -> tl.tl_last_cycle

(* Shadow the armed-trigger state the recorded commands imply, so the
   step fast path above stays sound.  [Load] restores trigger registers
   wholesale from a snapshot — go conservative. *)
let note_arms tl = function
  | Repl.Break_all _ | Repl.Break_any _ -> tl.tl_value_bp <- true
  | Repl.Clear -> tl.tl_value_bp <- false
  | Repl.Watch names ->
    tl.tl_watched <-
      List.sort_uniq String.compare (names @ tl.tl_watched)
  | Repl.Unwatch names ->
    tl.tl_watched <-
      List.filter (fun n -> not (List.mem n names)) tl.tl_watched
  | Repl.Load _ -> tl.tl_value_bp <- true
  | _ -> ()

let append tl cmd response cycle =
  let chain = chain_step tl.tl_chain (Repl.command_to_string cmd) response cycle in
  tl.tl_entries <-
    { e_cmd = cmd; e_response = response; e_cycle = cycle; e_chain = chain }
    :: tl.tl_entries;
  tl.tl_n_entries <- tl.tl_n_entries + 1;
  tl.tl_chain <- chain;
  tl.tl_last_cycle <- cycle;
  Obs.incr m_entries

let mclock_of s () = Board.jtag_seconds s.ts_board

let take_checkpoint s tl =
  let mclock = mclock_of s in
  let snap =
    Obs.span ~cat:"timeline" ~mclock "timeline.checkpoint" (fun () ->
        Host.snapshot s.ts_host)
  in
  tl.tl_checkpoints <-
    { ck_index = tl.tl_n_entries; ck_mut_cycle = tl.tl_last_cycle; ck_snap = snap }
    :: tl.tl_checkpoints;
  tl.tl_last_ck_cycle <- tl.tl_last_cycle;
  Obs.incr m_checkpoints;
  Obs.incr ~by:(snapshot_bytes snap) m_checkpoint_bytes

let maybe_checkpoint s tl =
  if tl.tl_last_cycle - tl.tl_last_ck_cycle >= tl.tl_cadence then
    take_checkpoint s tl

(* --- the timeline verbs ---------------------------------------------- *)

let require s verb =
  match s.ts_timeline with
  | Some tl -> tl
  | None ->
    invalid_arg
      (verb ^ ": no active recording (start one with: record [CADENCE])")

let start_recording s cadence_opt =
  (match s.ts_timeline with
  | Some _ ->
    invalid_arg
      "record: already recording (record status / record save FILE)"
  | None -> ());
  let cadence = Option.value cadence_opt ~default:default_cadence in
  let start_cycle = Host.mut_cycles s.ts_host in
  let mut_path = Host.mut_path s.ts_host in
  let tl =
    {
      tl_mut_path = mut_path;
      tl_rig = s.ts_rig;
      tl_cadence = cadence;
      tl_start_cycle = start_cycle;
      tl_init_chain =
        init_chain ~mut_path ~rig:s.ts_rig ~cadence ~start_cycle;
      tl_entries = [];
      tl_n_entries = 0;
      tl_checkpoints = [];
      tl_chain = init_chain ~mut_path ~rig:s.ts_rig ~cadence ~start_cycle;
      tl_last_cycle = start_cycle;
      tl_last_ck_cycle = start_cycle;
      tl_value_bp = true;  (* attach-time trigger state is unknown *)
      tl_watched = [];
    }
  in
  s.ts_timeline <- Some tl;
  Obs.set_gauge g_cadence (float_of_int cadence);
  take_checkpoint s tl;
  Printf.sprintf
    "recording (checkpoint cadence %d MUT cycles, started at mut cycle %d)"
    cadence start_cycle

let status s =
  match s.ts_timeline with
  | None -> "not recording"
  | Some tl ->
    Printf.sprintf
      "recording: %d entries, %d checkpoints (cadence %d, started at mut \
       cycle %d, now at mut cycle %d, chain %s)"
      tl.tl_n_entries
      (List.length tl.tl_checkpoints)
      tl.tl_cadence tl.tl_start_cycle tl.tl_last_cycle
      (String.sub tl.tl_chain 0 8)

(* --- on-disk format --------------------------------------------------

   Text header + per-entry lines (backslash-escaped free text, one
   command and one response line per entry), then the checkpoints with
   their snapshots embedded in Readback's binary format, then the final
   chain digest as a trailer.  Versioned like the wire protocol: a
   reader seeing a newer version refuses instead of guessing. *)

let format_version = 1

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | c -> Buffer.add_char b c);
       i := !i + 1
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let write_recording oc ~mut_path ~rig ~cadence ~start_cycle ~entries
    ~checkpoints ~chain =
  let pf fmt = Printf.fprintf oc fmt in
  pf "zoomie-timeline %d\n" format_version;
  pf "mut_path %s\n" mut_path;
  pf "rig %s\n" rig;
  pf "cadence %d\n" cadence;
  pf "start_cycle %d\n" start_cycle;
  pf "entries %d\n" (List.length entries);
  List.iter
    (fun e ->
      pf "entry %d %s %s\n" e.e_cycle e.e_chain
        (escape (Repl.command_to_string e.e_cmd));
      pf "response %s\n" (escape e.e_response))
    entries;
  pf "checkpoints %d\n" (List.length checkpoints);
  List.iter
    (fun ck ->
      pf "checkpoint %d %d\n" ck.ck_index ck.ck_mut_cycle;
      Readback.output_snapshot oc ck.ck_snap;
      (* keep the line framing intact after the binary blob *)
      output_char oc '\n')
    checkpoints;
  pf "chain %s\n" chain

let save_recording tl path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      write_recording oc ~mut_path:tl.tl_mut_path ~rig:tl.tl_rig
        ~cadence:tl.tl_cadence ~start_cycle:tl.tl_start_cycle
        ~entries:(List.rev tl.tl_entries)
        ~checkpoints:(List.rev tl.tl_checkpoints)
        ~chain:tl.tl_chain)

type recording = {
  rec_mut_path : string;
  rec_rig : string;
  rec_cadence : int;
  rec_start_cycle : int;
  rec_entries : entry array;
  rec_checkpoints : checkpoint array;
  rec_chain : string;
}

let load path : recording =
  let ic =
    try open_in_bin path with Sys_error msg -> raise (Bad_recording msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () =
        try input_line ic
        with End_of_file -> bad_recording "truncated recording"
      in
      let field key =
        let l = line () in
        match String.index_opt l ' ' with
        | Some i when String.sub l 0 i = key ->
          String.sub l (i + 1) (String.length l - i - 1)
        | _ -> bad_recording "expected %S line, got %S" key l
      in
      let int_field key =
        let v = field key in
        match int_of_string_opt v with
        | Some n -> n
        | None -> bad_recording "bad %s value %S" key v
      in
      (match int_of_string_opt (field "zoomie-timeline") with
      | Some v when v = format_version -> ()
      | Some v ->
        bad_recording
          "recording is format version %d, this reader speaks %d" v
          format_version
      | None -> bad_recording "bad format version");
      let mut_path = field "mut_path" in
      let rig = field "rig" in
      let cadence = int_field "cadence" in
      let start_cycle = int_field "start_cycle" in
      let n_entries = int_field "entries" in
      let entries =
        Array.init n_entries (fun i ->
            let l = line () in
            match String.split_on_char ' ' l with
            | "entry" :: cycle :: chain :: rest -> (
              let cmd_text = unescape (String.concat " " rest) in
              let cycle =
                match int_of_string_opt cycle with
                | Some c -> c
                | None -> bad_recording "entry %d: bad cycle %S" i cycle
              in
              let cmd =
                match Repl.parse_line cmd_text with
                | Ok c -> c
                | Error msg ->
                  bad_recording "entry %d: unparsable command %S (%s)" i
                    cmd_text msg
              in
              let response = unescape (field "response") in
              { e_cmd = cmd; e_response = response; e_cycle = cycle;
                e_chain = chain })
            | _ -> bad_recording "entry %d: malformed line %S" i l)
      in
      let n_checkpoints = int_field "checkpoints" in
      let checkpoints =
        Array.init n_checkpoints (fun i ->
            let l = line () in
            match String.split_on_char ' ' l with
            | [ "checkpoint"; index; mut_cycle ] -> (
              match (int_of_string_opt index, int_of_string_opt mut_cycle)
              with
              | Some ck_index, Some ck_mut_cycle ->
                let ck_snap =
                  try Readback.input_snapshot ic
                  with Readback.Bad_snapshot msg ->
                    bad_recording "checkpoint %d: %s" i msg
                in
                (* consume the newline after the binary blob *)
                (match input_line ic with
                | "" -> ()
                | l -> bad_recording "checkpoint %d: trailing junk %S" i l
                | exception End_of_file ->
                  bad_recording "truncated recording");
                { ck_index; ck_mut_cycle; ck_snap }
              | _ -> bad_recording "checkpoint %d: malformed line %S" i l)
            | _ -> bad_recording "checkpoint %d: malformed line %S" i l)
      in
      let chain = field "chain" in
      (* Verify the whole digest chain, entry by entry. *)
      let final =
        Array.fold_left
          (fun prev e ->
            let c =
              chain_step prev (Repl.command_to_string e.e_cmd) e.e_response
                e.e_cycle
            in
            if c <> e.e_chain then
              bad_recording
                "chain digest mismatch at mut cycle %d: recording tampered \
                 or truncated"
                e.e_cycle;
            c)
          (init_chain ~mut_path ~rig ~cadence ~start_cycle)
          entries
      in
      if final <> chain then
        bad_recording "final chain digest mismatch (file says %s)" chain;
      {
        rec_mut_path = mut_path;
        rec_rig = rig;
        rec_cadence = cadence;
        rec_start_cycle = start_cycle;
        rec_entries = entries;
        rec_checkpoints = checkpoints;
        rec_chain = chain;
      })

let transcript (r : recording) =
  Array.to_list r.rec_entries
  |> List.map (fun e ->
         Printf.sprintf "> %s\n%s" (Repl.command_to_string e.e_cmd)
           e.e_response)

(* --- reverse execution ----------------------------------------------- *)

(* Restore the nearest checkpoint at or before the target, re-execute the
   recorded prefix, step up to the exact cycle, and truncate the future:
   after time travel the recording's history ends at [target] (plus a
   synthetic [step] entry for any partial advance), exactly as if the
   session had stopped there live. *)
let reverse s tl ~target =
  let host = s.ts_host and board = s.ts_board in
  let entries = Array.of_list (List.rev tl.tl_entries) in
  let n = Array.length entries in
  (* first entry strictly past the target cycle *)
  let j = ref 0 in
  while !j < n && entries.(!j).e_cycle <= target do incr j done;
  let j = !j in
  let ck =
    (* newest-first, so the first eligible one is the nearest *)
    match List.find_opt (fun ck -> ck.ck_index <= j) tl.tl_checkpoints with
    | Some ck -> ck
    | None -> bad_recording "no checkpoint at or before the target cycle"
  in
  let mclock = mclock_of s in
  Obs.span ~cat:"timeline" ~mclock "timeline.reverse" (fun () ->
      let t0 = mclock () in
      Obs.span ~cat:"timeline" ~mclock "timeline.restore" (fun () ->
          Host.restore host ck.ck_snap);
      Obs.incr m_restores;
      Obs.observe h_restore (mclock () -. t0);
      let t1 = mclock () in
      let reexec = j - ck.ck_index in
      Obs.span ~cat:"timeline" ~mclock "timeline.reexec" (fun () ->
          for i = ck.ck_index to j - 1 do
            let e = entries.(i) in
            let resp, _ = exec_catching host board e.e_cmd in
            if resp <> e.e_response then
              bad_recording
                "replay divergence at entry %d (%s): recorded %S, \
                 re-execution produced %S"
                i
                (Repl.command_to_string e.e_cmd)
                e.e_response resp
          done);
      Obs.observe h_reexec (mclock () -. t1);
      let cur = Host.mut_cycles host in
      let expected =
        if j = 0 then tl.tl_start_cycle else entries.(j - 1).e_cycle
      in
      if cur <> expected then
        bad_recording
          "re-execution reached mut cycle %d where the recording reached %d"
          cur expected;
      (* truncate the future *)
      tl.tl_entries <- List.rev (Array.to_list (Array.sub entries 0 j));
      tl.tl_n_entries <- j;
      tl.tl_chain <-
        (if j = 0 then tl.tl_init_chain else entries.(j - 1).e_chain);
      tl.tl_checkpoints <-
        List.filter (fun c -> c.ck_index <= j) tl.tl_checkpoints;
      tl.tl_last_cycle <- cur;
      (match tl.tl_checkpoints with
      | c :: _ -> tl.tl_last_ck_cycle <- c.ck_mut_cycle
      | [] -> tl.tl_last_ck_cycle <- tl.tl_start_cycle);
      (* restored trigger state came from a snapshot — don't trust the
         shadow flags any more *)
      tl.tl_value_bp <- true;
      let stepped = target - cur in
      if stepped > 0 then begin
        Host.step host stepped;
        append tl (Repl.Step stepped)
          (Printf.sprintf "stepped %d cycles" stepped)
          target;
        maybe_checkpoint s tl
      end;
      Printf.sprintf
        "reversed to mut cycle %d (restored checkpoint at mut cycle %d, \
         re-executed %d command%s%s)"
        target ck.ck_mut_cycle reexec
        (if reexec = 1 then "" else "s")
        (if stepped > 0 then Printf.sprintf ", stepped %d" stepped else ""))

(* --- when-did --------------------------------------------------------- *)

(* Checkpoint state is probed purely host-side: the banked frames parse
   through the same site map readback uses, so a probe costs zero cable
   traffic and never disturbs the board. *)
let checkpoint_state host ck =
  let prefix = Host.mut_path host ^ ".mut." in
  Readback.extract_registers (Host.site_map host) ck.ck_snap.Readback.snap_frames
    ~select:(fun n -> String.starts_with ~prefix n)

let when_did s reg =
  let tl = require s "when-did" in
  let host = s.ts_host in
  let full = Host.full_register_name host reg in
  let mclock = mclock_of s in
  Obs.span ~cat:"timeline" ~mclock "timeline.when_did" (fun () ->
      let now_v =
        match List.assoc_opt full (Host.read_state host) with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "when-did: unknown register %S" reg)
      in
      let cks = Array.of_list (List.rev tl.tl_checkpoints) in
      let n = Array.length cks in
      if n = 0 then "no checkpoints recorded yet"
      else begin
        let probes = ref 0 in
        let cache = Hashtbl.create 8 in
        let value_at i =
          match Hashtbl.find_opt cache i with
          | Some v -> v
          | None ->
            incr probes;
            Obs.incr m_probes;
            let v =
              match
                Readback.extract_registers (Host.site_map host)
                  cks.(i).ck_snap.Readback.snap_frames
                  ~select:(fun nm -> nm = full)
              with
              | [ (_, v) ] -> Some v
              | _ -> None
            in
            Hashtbl.add cache i v;
            v
        in
        let equal_now i =
          match value_at i with
          | Some v -> Bits.equal v now_v
          | None -> false
        in
        (* Smallest checkpoint index whose banked value equals the live
           one; index [n] is the virtual "now", equal by definition.
           ≤ ⌈log₂(n+1)⌉ probes, all pure — zero restores. *)
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if equal_now mid then hi := mid else lo := mid + 1
        done;
        let i0 = !lo in
        let footer =
          Printf.sprintf "[%d probes over %d checkpoints, 0 restores]"
            !probes n
        in
        if i0 = 0 then
          Printf.sprintf
            "%s = %s since the first checkpoint (mut cycle %d): no \
             observed change %s"
            reg (Bits.to_string now_v)
            cks.(0).ck_mut_cycle footer
        else begin
          let before =
            (* probed during the search (the last lo-move tested i0-1) *)
            match value_at (i0 - 1) with
            | Some v -> Bits.to_string v
            | None -> "<absent>"
          in
          if i0 = n then
            Printf.sprintf
              "%s changed to %s (was %s) between mut cycle %d and now \
               (mut cycle %d) %s"
              reg (Bits.to_string now_v) before
              cks.(n - 1).ck_mut_cycle tl.tl_last_cycle footer
          else
            Printf.sprintf
              "%s changed to %s (was %s) between mut cycle %d and mut \
               cycle %d %s"
              reg (Bits.to_string now_v) before
              cks.(i0 - 1).ck_mut_cycle
              cks.(i0).ck_mut_cycle footer
        end
      end)

(* --- the execute wrapper ---------------------------------------------- *)

let execute s (cmd : Repl.command) : string =
  match cmd with
  | Repl.Record cadence -> start_recording s cadence
  | Repl.Record_status -> status s
  | Repl.Record_save file ->
    let tl = require s "record save" in
    save_recording tl file;
    Printf.sprintf "saved recording: %d entries, %d checkpoints -> %s"
      tl.tl_n_entries
      (List.length tl.tl_checkpoints)
      file
  | Repl.Reverse_step n ->
    let tl = require s "reverse-step" in
    let target = tl.tl_last_cycle - n in
    if target < tl.tl_start_cycle then
      invalid_arg
        (Printf.sprintf
           "reverse-step: only %d recorded cycle%s behind (now at mut cycle \
            %d, recording started at %d)"
           (tl.tl_last_cycle - tl.tl_start_cycle)
           (if tl.tl_last_cycle - tl.tl_start_cycle = 1 then "" else "s")
           tl.tl_last_cycle tl.tl_start_cycle);
    reverse s tl ~target
  | Repl.Reverse_continue c ->
    let tl = require s "reverse-continue" in
    if c < tl.tl_start_cycle then
      invalid_arg
        (Printf.sprintf
           "reverse-continue: mut cycle %d predates the recording (started \
            at mut cycle %d)"
           c tl.tl_start_cycle);
    if c > tl.tl_last_cycle then
      invalid_arg
        (Printf.sprintf
           "reverse-continue: mut cycle %d is ahead of the present (mut \
            cycle %d); reverse only travels backwards"
           c tl.tl_last_cycle);
    reverse s tl ~target:c
  | Repl.When_did reg -> when_did s reg
  | _ -> (
    match s.ts_timeline with
    | Some tl when recorded_cmd cmd ->
      let resp, exn = exec_catching s.ts_host s.ts_board cmd in
      let cycle = cycle_after s tl ~failed:(exn <> None) cmd in
      append tl cmd resp cycle;
      if exn = None then note_arms tl cmd;
      maybe_checkpoint s tl;
      (match exn with Some e -> raise e | None -> resp)
    | _ -> Repl.execute s.ts_host s.ts_board cmd)

let run_script s script =
  String.split_on_char '\n' script
  |> List.filter_map (fun line ->
         match Repl.parse_line line with
         | Ok Repl.Nop -> None
         | Ok cmd ->
           let out =
             try execute s cmd with
             | Invalid_argument msg -> "error: " ^ msg
             | Readback.Readback_error msg -> "error: " ^ msg
             | Readback.Bad_snapshot msg -> "error: bad snapshot: " ^ msg
             | Bad_recording msg -> "error: bad recording: " ^ msg
           in
           Some (Printf.sprintf "> %s\n%s" (String.trim line) out)
         | Error msg ->
           Some (Printf.sprintf "> %s\nerror: %s" (String.trim line) msg))

(* --- replay ----------------------------------------------------------- *)

type divergence = {
  div_index : int;
  div_expected : string;
  div_got : string;
}

let replay (r : recording) host board =
  if Host.mut_path host <> r.rec_mut_path then
    bad_recording "recording is for MUT path %S, session is attached at %S"
      r.rec_mut_path (Host.mut_path host);
  let ck0 =
    match
      Array.to_list r.rec_checkpoints
      |> List.find_opt (fun ck -> ck.ck_index = 0)
    with
    | Some ck -> ck
    | None -> bad_recording "recording has no initial checkpoint"
  in
  (* checkpoints keyed by the entry index they follow, for the
     cycle-counter spot checks below *)
  let ck_at = Hashtbl.create 8 in
  Array.iter (fun ck -> Hashtbl.replace ck_at ck.ck_index ck) r.rec_checkpoints;
  Host.restore host ck0.ck_snap;
  Obs.incr m_restores;
  let out = ref [] in
  let divergence = ref None in
  (try
     Array.iteri
       (fun i e ->
         let resp, _ = exec_catching host board e.e_cmd in
         out :=
           Printf.sprintf "> %s\n%s" (Repl.command_to_string e.e_cmd) resp
           :: !out;
         if resp <> e.e_response then begin
           divergence :=
             Some
               { div_index = i; div_expected = e.e_response; div_got = resp };
           raise Exit
         end;
         match Hashtbl.find_opt ck_at (i + 1) with
         | Some ck ->
           let cur = Host.mut_cycles host in
           if cur <> ck.ck_mut_cycle then begin
             divergence :=
               Some
                 {
                   div_index = i;
                   div_expected =
                     Printf.sprintf "mut cycle %d at checkpoint after entry %d"
                       ck.ck_mut_cycle i;
                   div_got = Printf.sprintf "mut cycle %d" cur;
                 };
             raise Exit
           end
         | None -> ())
       r.rec_entries
   with Exit -> ());
  (List.rev !out, !divergence)

(* --- fuzz-minimizer companion writer ---------------------------------- *)

let record_commands ?(rig = "fuzz-hub") ?(cadence = default_cadence) host
    board commands ~path =
  let s = session ~rig host board in
  ignore (start_recording s (Some cadence));
  List.iter
    (fun cmd ->
      if recorded_cmd cmd then
        try ignore (execute s cmd) with
        | Invalid_argument _ | Readback.Readback_error _
        | Readback.Bad_snapshot _ ->
          (* recorded with its error text; replay reproduces the error *)
          ())
    commands;
  match s.ts_timeline with
  | Some tl ->
    save_recording tl path;
    tl.tl_n_entries
  | None -> assert false
