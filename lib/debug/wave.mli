(** Source-agnostic waveform collection with VCD export.

    {!Host.trace} feeds this from readback; anything producing named
    [(string * Bits.t)] samples per cycle can use it.  Signals are
    declared on first appearance and stored change-compressed. *)

open Zoomie_rtl

type t

val create : ?timescale:string -> scope:string -> unit -> t

(** Record one cycle's samples. *)
val sample : t -> (string * Bits.t) list -> unit

(** Cycles sampled so far. *)
val cycles : t -> int

val signal_count : t -> int

(** Serialize to VCD text. *)
val contents : t -> string

val write : t -> string -> unit
