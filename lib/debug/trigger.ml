(** Breakpoint trigger unit — Algorithm 1.

    For every watched signal [i] the unit holds three runtime-writable
    registers: [RefVal_i], [And_mask_i] and [Or_mask_i]; two global select
    bits choose how the per-signal matches combine:

    - AND arm: [And_stop = ∀i. (sig_i == RefVal_i) ∨ ¬And_mask_i]
    - OR arm:  [Or_stop  = ∃i. (sig_i == RefVal_i) ∧ Or_mask_i]
    - [Stop   = (And_sel ∧ And_stop) ∨ (Or_sel ∧ Or_stop)]

    (The paper's Eq. 1 writes the arm combination as a conjunction; taken
    literally that prevents using either arm alone, so — like the
    "arbitrarily combined" prose of §3.4 requires — we implement the
    masked-AND/OR composition above.)

    All configuration registers have identity next-state functions: they
    are reconfigured on the fly through Zoomie's state-injection path
    (§3.3), never by recompilation. *)

open Zoomie_rtl

type watch = { w_name : string; w_width : int }

(** Names of the configuration registers, for the host side. *)
let refval_reg w = "cfg_ref_" ^ w.w_name
let and_mask_reg w = "cfg_andmask_" ^ w.w_name
let or_mask_reg w = "cfg_ormask_" ^ w.w_name
let and_sel_reg = "cfg_and_sel"
let or_sel_reg = "cfg_or_sel"

(** Generate the trigger logic inside an existing module under
    construction.  [signals] supplies the watched expressions.  Returns the
    stop expression. *)
let build (b : Builder.t) ~clock (watches : watch list)
    ~(signals : (string * Expr.t) list) =
  let cfg name width =
    Expr.Signal (Builder.reg_fb b ~clock name width ~next:(fun q -> q))
  in
  let and_sel = cfg and_sel_reg 1 in
  let or_sel = cfg or_sel_reg 1 in
  let per_signal =
    List.map
      (fun w ->
        let refval = cfg (refval_reg w) w.w_width in
        let and_mask = cfg (and_mask_reg w) 1 in
        let or_mask = cfg (or_mask_reg w) 1 in
        let sig_expr =
          match List.assoc_opt w.w_name signals with
          | Some e -> e
          | None ->
            invalid_arg
              (Printf.sprintf "Trigger.build: watched signal %S not supplied"
                 w.w_name)
        in
        let matches = Expr.Eq (sig_expr, refval) in
        (Expr.(matches |: ~:and_mask), Expr.(matches &: or_mask)))
      watches
  in
  let and_stop =
    List.fold_left (fun acc (a, _) -> Expr.And (acc, a)) Expr.vdd per_signal
  in
  let or_stop =
    List.fold_left (fun acc (_, o) -> Expr.Or (acc, o)) Expr.gnd per_signal
  in
  Expr.((and_sel &: and_stop) |: (or_sel &: or_stop))

(** Host-side encoding of a value-breakpoint configuration: which registers
    to write with which values to arm the breakpoint. *)
type arm_spec = (string * Bits.t) list

let check_watched watches conds =
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun w -> w.w_name = name) watches) then
        invalid_arg (Printf.sprintf "Trigger: %S is not watched" name))
    conds

let arm_with watches conds ~used_mask ~unused_mask ~sels =
  check_watched watches conds;
  List.concat_map
    (fun w ->
      match List.assoc_opt w.w_name conds with
      | Some v ->
        [
          (refval_reg w, Bits.resize v w.w_width);
          (and_mask_reg w, Bits.of_int ~width:1 (fst used_mask));
          (or_mask_reg w, Bits.of_int ~width:1 (snd used_mask));
        ]
      | None ->
        [
          (and_mask_reg w, Bits.of_int ~width:1 (fst unused_mask));
          (or_mask_reg w, Bits.of_int ~width:1 (snd unused_mask));
        ])
    watches
  @ [
      (and_sel_reg, Bits.of_int ~width:1 (fst sels));
      (or_sel_reg, Bits.of_int ~width:1 (snd sels));
    ]

(** Break when all the given (signal, value) pairs match simultaneously. *)
let arm_all watches conds : arm_spec =
  arm_with watches conds ~used_mask:(1, 0) ~unused_mask:(0, 0) ~sels:(1, 0)

(** Break when any one of the (signal, value) pairs matches. *)
let arm_any watches conds : arm_spec =
  arm_with watches conds ~used_mask:(0, 1) ~unused_mask:(0, 0) ~sels:(0, 1)

(** Disarm every value breakpoint. *)
let disarm (watches : watch list) : arm_spec =
  List.concat_map
    (fun w ->
      [
        (and_mask_reg w, Bits.of_int ~width:1 0);
        (or_mask_reg w, Bits.of_int ~width:1 0);
      ])
    watches
  @ [
      (and_sel_reg, Bits.of_int ~width:1 0);
      (or_sel_reg, Bits.of_int ~width:1 0);
    ]
