(** The pre-index association-list readback executor, retained for
    differential testing and as the micro-bench baseline.  Not for
    production use: it keeps the original silent-zero semantics for
    uncovered frames. *)

open Zoomie_fabric
open Zoomie_rtl
module Board = Zoomie_bitstream.Board
module Netlist = Zoomie_synth.Netlist

(** The seed extraction algorithm over per-SLR association lists
    [(slr, [(row, col, minor) -> words])] — O(sites × frames). *)
val extract_registers :
  Netlist.t ->
  Loc.map ->
  (int * ((int * int * int) * int array) list) list ->
  select:(string -> bool) ->
  (string * Bits.t) list

(** Execute a plan through the normal transport, then parse the response
    with the baseline extractor. *)
val read_registers :
  Board.t -> Netlist.t -> Loc.map -> Readback.plan -> select:(string -> bool) ->
  (string * Bits.t) list
