(** Session flight recorder and reverse debugging — time travel for a
    {!Host} session.

    Wrap a session in {!session} and drive it through {!execute} (a
    superset of {!Repl.execute}): every state-relevant command is
    recorded together with its transcript response and the MUT cycle it
    reached, chained under a running digest, and the recorder banks a
    full {!Readback.snapshot} checkpoint every [cadence] MUT cycles.
    On top of that history the time-travel verbs work:

    - [reverse-step N] / [reverse-continue C] restore the nearest
      checkpoint at or before the target cycle and deterministically
      re-execute the recorded commands forward (verifying each response
      against the recording — divergence raises {!Bad_recording});
    - [when-did REG] binary-searches the checkpoints for the last
      observable change of a register, probing checkpoint state purely
      host-side (zero cable traffic, ≤ ⌈log₂ n⌉+1 frame extractions);
    - [record save FILE] persists the whole recording in a versioned
      on-disk format that {!load}/{!replay} (and [zoomie replay FILE])
      re-drive headlessly, bit-for-bit.

    Everything is instrumented through [zoomie_obs]: [timeline.*]
    counters/gauges/histograms and spans (which nest under hub request
    spans when the hub drives the session). *)

open Zoomie_rtl
module Board = Zoomie_bitstream.Board

(** A malformed/corrupt recording file, or replay divergence: the
    re-executed session stopped matching the recorded one. *)
exception Bad_recording of string

(** One recorded command: what ran, the transcript text it produced,
    the MUT cycle counter after it completed, and the running chain
    digest up to and including it. *)
type entry = {
  e_cmd : Repl.command;
  e_response : string;
  e_cycle : int;
  e_chain : string;
}

(** A banked full-state snapshot: taken after [ck_index] entries, with
    the MUT cycle counter at [ck_mut_cycle].  ([ck_snap.snap_cycle] is
    the free-running clock, not the MUT's — hence the separate field.) *)
type checkpoint = {
  ck_index : int;
  ck_mut_cycle : int;
  ck_snap : Readback.snapshot;
}

(** An active recorder (opaque; owned by a {!session}). *)
type t

(** A recorder-capable front-end around one attached session.  [ts_rig]
    names the board/design rig so [zoomie replay] can rebuild it. *)
type session = {
  ts_host : Host.t;
  ts_board : Board.t;
  ts_rig : string;
  mutable ts_timeline : t option;
}

(** Checkpoint cadence (MUT cycles) used when [record] gives none. *)
val default_cadence : int

val session : ?rig:string -> Host.t -> Board.t -> session

val is_recording : session -> bool

(** Entries recorded so far (0 when not recording). *)
val entry_count : session -> int

(** Checkpoints banked so far (0 when not recording). *)
val checkpoint_count : session -> int

(** Execute one command.  Non-timeline commands delegate to
    {!Repl.execute} with identical results and exception behavior; when
    a recording is active they are also appended to it (including
    failures, recorded as their ["error: ..."] transcript text before
    the exception propagates).  The timeline verbs ([record],
    [record save], [record status], [reverse-step], [reverse-continue],
    [when-did]) are handled here.
    @raise Invalid_argument on misuse (no active recording, target cycle
    out of the recorded range, unknown register).
    @raise Bad_recording when re-execution diverges from the recording. *)
val execute : session -> Repl.command -> string

(** Run a newline-separated script (the {!Repl.run_script} of this
    layer); errors — including {!Bad_recording} divergence — become
    ["error: ..."] transcript entries. *)
val run_script : session -> string -> string list

(** {1 The on-disk recording} *)

(** Version tag written in the [zoomie-timeline N] header line. *)
val format_version : int

(** A loaded recording: header, entries oldest-first, checkpoints
    oldest-first (always at least the initial one at [ck_index = 0]),
    and the final chain digest. *)
type recording = {
  rec_mut_path : string;
  rec_rig : string;
  rec_cadence : int;
  rec_start_cycle : int;
  rec_entries : entry array;
  rec_checkpoints : checkpoint array;
  rec_chain : string;
}

(** Load and verify a recording: the whole digest chain is recomputed
    and checked entry by entry.
    @raise Bad_recording on a missing/malformed/tampered file. *)
val load : string -> recording

(** The recorded transcript, one ["> cmd\nresponse"] string per entry —
    what the live session saw, and what {!replay} must reproduce. *)
val transcript : recording -> string list

(** Where a replay stopped matching the recording. *)
type divergence = {
  div_index : int;  (** entry index (or the boundary after it) *)
  div_expected : string;
  div_got : string;
}

(** Re-drive a recording against a freshly attached session: restore the
    initial checkpoint, then re-execute every entry, comparing each
    response to the recorded one and the MUT cycle counter at every
    checkpoint boundary.  Returns the replayed transcript and the first
    divergence, if any (the transcript stops there).
    @raise Bad_recording when the session's MUT path does not match, or
    the recording lacks its initial checkpoint. *)
val replay : recording -> Host.t -> Board.t -> string list * divergence option

(** {1 Companion writing (fuzz minimizer integration)} *)

(** Record a command list as a replayable recording file: attach-time
    checkpoint + one entry per command, executed on the given session.
    Used by the fuzz minimizer to emit [.zrec] companions next to
    [.repro] files.  Returns the number of entries written. *)
val record_commands :
  ?rig:string ->
  ?cadence:int ->
  Host.t ->
  Board.t ->
  Repl.command list ->
  path:string ->
  int

(** {1 Metric names}

    Registered on first use: [timeline.entries], [timeline.checkpoints],
    [timeline.checkpoint_bytes], [timeline.restores],
    [timeline.when_did_probes] (counters); [timeline.cadence_cycles]
    (gauge); [timeline.restore_jtag_s], [timeline.reexec_jtag_s]
    (histograms of modeled cable seconds). *)

(**/**)

(** Exposed for tests: the running digest step. *)
val chain_step : string -> string -> string -> int -> string

val snapshot_bytes : Readback.snapshot -> int

(** Exposed for tests: live register values a checkpoint holds, parsed
    purely host-side from its banked frames (no cable traffic). *)
val checkpoint_state : Host.t -> checkpoint -> (string * Bits.t) list
