(** The Debug Controller: an RTL wrapper placed around the module under
    test (§3.1).

    The wrapper has exactly the MUT's ports, so it transparently replaces
    every instance of the MUT in the design.  Inside it provides:

    - a glitch-free gated clock driving the MUT (pause/resume/step);
    - pause buffers on each declared decoupled interface (Figure 3 safety);
    - the Algorithm 1 trigger unit over watched signals (value breakpoints);
    - a 64-bit step counter (cycle breakpoints, gdb-style [until]);
    - synthesized SVA monitors (assertion breakpoints, §3.4);
    - sticky stop cause and cycle-count status registers.

    Every control register is written through Zoomie's state-injection path
    and every status register read through readback — no recompilation to
    change what you debug. *)

open Zoomie_rtl
module Decoupled = Zoomie_pause.Decoupled

(* Debug register names inside the wrapper (the host addresses them as
   [<mut instance path>.<name>]). *)
let ctl_run_reg = "dbg_ctl_run"
let stop_latched_reg = "dbg_stop_latched"
let step_counter_reg = "dbg_step_counter"
let cycle_count_reg = "dbg_cycle_count"
let assert_enable_reg = "dbg_assert_enable"
let stop_cause_reg = "dbg_stop_cause"
let assert_cause_reg = "dbg_assert_cause"

(* Stop-cause bit positions. *)
let cause_value_bit = 0
let cause_cycle_bit = 1
let cause_assert_bit = 2
let cause_watch_bit = 3

(** Watchpoint config/shadow register names (one pair per watched signal). *)
let watch_mask_reg (w : Trigger.watch) = "cfg_watch_" ^ w.Trigger.w_name
let watch_shadow_reg (w : Trigger.watch) = "dbg_shadow_" ^ w.Trigger.w_name

type config = {
  mut_module : string;
  interfaces : Decoupled.t list;
  watches : Trigger.watch list;
  assertions : Zoomie_sva.Emit.monitor list;
}

type info = {
  wrapper_module : string;
  cfg : config;
  mut_clock : string;  (** the MUT's root clock name *)
}

let wrapper_name mut_module = "zoomie_dc_" ^ mut_module

(* The expression reading MUT port [name] inside the wrapper (input ports
   pass through; output ports are wrapper wires). *)
let port_reader ~wrapper_inputs ~out_wires name =
  match List.assoc_opt name out_wires with
  | Some id -> Expr.Signal id
  | None -> (
    match List.assoc_opt name wrapper_inputs with
    | Some e -> e
    | None ->
      invalid_arg (Printf.sprintf "Debug controller: unknown MUT port %S" name))

(** Build the wrapper module and rewrite the design so every instance of
    the MUT uses it.  The MUT itself moves to instance path [".mut"] inside
    the wrapper. *)
let wrap (design : Design.t) (cfg : config) : Design.t * info =
  let mut = Design.find design cfg.mut_module in
  let root_clocks =
    List.filter_map
      (function Circuit.Root_clock c -> Some c | Circuit.Gated_clock _ -> None)
      mut.Circuit.clocks
  in
  let mut_clock =
    match root_clocks with
    | [ c ] -> c
    | [] -> invalid_arg "Debug controller: MUT has no root clock"
    | cs ->
      (* 6.1: precise stepping over multiple asynchronous clock domains is
         only possible when they are phase-aligned multiples; we require a
         single root clock and direct users to restructure or restrict the
         MUT (the same guidance the paper gives). *)
      invalid_arg
        (Printf.sprintf
           "Debug controller: MUT has %d asynchronous root clocks (%s);             precise pausing requires a single clock domain (see paper 6.1)"
           (List.length cs) (String.concat ", " cs))
  in
  let b = Builder.create (wrapper_name cfg.mut_module) in
  let clk = Builder.clock b mut_clock in
  (* --- debug state (free clock) --- *)
  let ctl_run =
    Builder.reg_fb b ~clock:clk ~init:(Bits.of_int ~width:1 1) ctl_run_reg 1
      ~next:(fun q -> q)
  in
  let stop_latched = Builder.reg b ~clock:clk stop_latched_reg 1 in
  let step_counter = Builder.reg b ~clock:clk step_counter_reg 64 in
  let cycle_count = Builder.reg b ~clock:clk cycle_count_reg 64 in
  let n_assert = List.length cfg.assertions in
  let assert_enable =
    if n_assert = 0 then None
    else
      Some
        (Builder.reg_fb b ~clock:clk
           ~init:(Bits.ones n_assert)
           assert_enable_reg n_assert
           ~next:(fun q -> q))
  in
  let stop_cause = Builder.reg b ~clock:clk stop_cause_reg 4 in
  let assert_cause =
    if n_assert = 0 then None
    else Some (Builder.reg b ~clock:clk assert_cause_reg n_assert)
  in
  (* --- wrapper ports mirror the MUT's --- *)
  let wrapper_inputs =
    List.map
      (fun (s : Circuit.signal) -> (s.name, Builder.input b s.name s.width))
      (Circuit.inputs mut)
  in
  let out_wires =
    List.map
      (fun (s : Circuit.signal) ->
        (s.name, Builder.wire b ("mut_" ^ s.name) s.width))
      (Circuit.outputs mut)
  in
  let read_port = port_reader ~wrapper_inputs ~out_wires in
  (* --- trigger sources --- *)
  let watch_signals =
    List.map (fun (w : Trigger.watch) -> (w.Trigger.w_name, read_port w.Trigger.w_name)) cfg.watches
  in
  let value_stop = Trigger.build b ~clock:clk cfg.watches ~signals:watch_signals in
  let value_stop = Builder.wire_of b "dbg_value_stop" 1 value_stop in
  (* Watchpoints: break when a watched signal *changes* while running.
     Each watch keeps a shadow copy updated only in running cycles, so the
     comparison is against the value of the previous executed MUT cycle. *)
  let watch_stop_terms = ref [] in
  let watch_shadow_setup = ref [] in
  List.iter
    (fun (w : Trigger.watch) ->
      let sig_expr = List.assoc w.Trigger.w_name watch_signals in
      let mask =
        Builder.reg_fb b ~clock:clk (watch_mask_reg w) 1 ~next:(fun q -> q)
      in
      let shadow = Builder.reg b ~clock:clk (watch_shadow_reg w) w.Trigger.w_width in
      (* The shadow lags the signal by one cycle; [primed] suppresses the
         first comparison after arming/resuming so the stale delta from the
         pause window never fires.  Watchpoints take effect from the first
         executed MUT cycle onward. *)
      let primed = Builder.reg b ~clock:clk ("dbg_primed_" ^ w.Trigger.w_name) 1 in
      let changed = Expr.(sig_expr <>: Signal shadow) in
      watch_stop_terms :=
        Expr.(Signal mask &: Signal primed &: changed) :: !watch_stop_terms;
      watch_shadow_setup := (shadow, sig_expr, primed, mask) :: !watch_shadow_setup)
    cfg.watches;
  let watch_stop =
    Builder.wire_of b "dbg_watch_stop" 1 (Expr.tree_or !watch_stop_terms)
  in
  (* The cycle breakpoint fires the cycle *after* the counter's final tick,
     so step(n) executes exactly n MUT cycles. *)
  let step_done = Builder.reg b ~clock:clk "dbg_step_done" 1 in
  let cycle_stop = Builder.wire_of b "dbg_cycle_stop" 1 (Expr.Signal step_done) in
  (* Assertion monitors (instantiated below, on the gated clock). *)
  let assert_viol_wires =
    List.mapi
      (fun i _ -> Builder.wire b (Printf.sprintf "dbg_assert_viol_%d" i) 1)
      cfg.assertions
  in
  let assert_stop_expr =
    match assert_enable with
    | None -> Expr.gnd
    | Some en ->
      List.fold_left
        (fun acc (i, w) ->
          Expr.(acc |: (Signal w &: bit (Signal en) i)))
        Expr.gnd
        (List.mapi (fun i w -> (i, w)) assert_viol_wires)
  in
  let assert_stop = Builder.wire_of b "dbg_assert_stop" 1 assert_stop_expr in
  let stop_now =
    Builder.wire_of b "dbg_stop_now" 1
      Expr.(value_stop |: cycle_stop |: assert_stop |: watch_stop)
  in
  (* Run gate: pause in the exact cycle a trigger activates. *)
  let run =
    Builder.wire_of b "dbg_run" 1
      Expr.(Signal ctl_run &: ~:(Signal stop_latched) &: ~:stop_now)
  in
  let pause = Builder.wire_of b "dbg_pause" 1 Expr.(~:run) in
  (* Watch shadows track the watched signals on the free clock; priming
     requires one running cycle with the mask set. *)
  List.iter
    (fun (shadow, sig_expr, primed, mask) ->
      Builder.reg_next b shadow sig_expr;
      Builder.reg_next b primed Expr.(Signal mask &: (Signal primed |: run)))
    !watch_shadow_setup;
  (* Registered pause for interface masking (see Pause_buffer timing note). *)
  let pause_q =
    Expr.Signal (Builder.reg_fb b ~clock:clk "dbg_pause_q" 1 ~next:(fun _ -> pause))
  in
  (* Sticky stop + causes. *)
  Builder.reg_next b stop_latched Expr.(Signal stop_latched |: stop_now);
  Builder.reg_next b stop_cause
    Expr.(
      Signal stop_cause
      |: Concat
           (watch_stop, Concat (assert_stop, Concat (cycle_stop, value_stop))));
  (match assert_cause with
  | None -> ()
  | Some r ->
    let viols =
      match assert_viol_wires with
      | [] -> Expr.gnd
      | [ w ] -> Expr.Signal w
      | w :: rest ->
        List.fold_left
          (fun acc x -> Expr.Concat (Expr.Signal x, acc))
          (Expr.Signal w) rest
    in
    Builder.reg_next b r Expr.(Signal r |: viols));
  (* Step counter decrements while running; cycle counter increments. *)
  Builder.reg_next b step_done
    Expr.(
      run &: (Signal step_counter ==: Const (Bits.of_int ~width:64 1))
      |: (Signal step_done &: Signal stop_latched));
  Builder.reg_next b step_counter
    Expr.(
      mux
        (run &: Reduce_or (Signal step_counter))
        (Signal step_counter -: Const (Bits.of_int ~width:64 1))
        (Signal step_counter));
  Builder.reg_next b cycle_count
    Expr.(
      mux run
        (Signal cycle_count +: Const (Bits.of_int ~width:64 1))
        (Signal cycle_count));
  (* --- the gated clock driving the MUT --- *)
  let gclk = Builder.gated_clock b ~name:"dbg_gclk" ~parent:clk ~enable:run in
  (* --- interface classification --- *)
  let requester_ifs =
    List.filter (fun (i : Decoupled.t) -> i.Decoupled.mut_is_requester) cfg.interfaces
  in
  let responder_ifs =
    List.filter (fun (i : Decoupled.t) -> not i.Decoupled.mut_is_requester) cfg.interfaces
  in
  let is_requester_out name =
    List.exists
      (fun (i : Decoupled.t) ->
        i.Decoupled.valid_signal = name || i.Decoupled.data_signal = name)
      requester_ifs
  in
  let requester_ready_if name =
    List.find_opt (fun (i : Decoupled.t) -> i.Decoupled.ready_signal = name) requester_ifs
  in
  let is_responder_ready name =
    List.exists (fun (i : Decoupled.t) -> i.Decoupled.ready_signal = name) responder_ifs
  in
  (* Pause-buffer wires per requester interface. *)
  let pb_wires =
    List.map
      (fun (i : Decoupled.t) ->
        let n = i.Decoupled.if_name in
        ( i,
          ( Builder.wire b ("pb_" ^ n ^ "_u_ready") 1,
            Builder.wire b ("pb_" ^ n ^ "_d_valid") 1,
            Builder.wire b ("pb_" ^ n ^ "_d_data") i.Decoupled.data_width ) ))
      requester_ifs
  in
  (* --- instantiate the MUT on the gated clock --- *)
  let mut_conns =
    List.map
      (fun (s : Circuit.signal) ->
        (* Requester-side ready comes from the pause buffer; everything else
           passes straight through. *)
        let expr =
          match requester_ready_if s.Circuit.name with
          | Some i ->
            let u_ready, _, _ = List.assoc i pb_wires in
            Expr.Signal u_ready
          | None -> List.assoc s.Circuit.name wrapper_inputs
        in
        Circuit.Drive_input (s.Circuit.name, expr))
      (Circuit.inputs mut)
    @ List.map
        (fun (s : Circuit.signal) ->
          Circuit.Read_output (s.Circuit.name, List.assoc s.Circuit.name out_wires))
        (Circuit.outputs mut)
  in
  Builder.instantiate b ~inst_name:"mut" ~module_name:cfg.mut_module
    ~clock_map:[ (mut_clock, gclk) ]
    mut_conns;
  (* --- pause buffer instances (free clock) --- *)
  List.iter
    (fun ((i : Decoupled.t), (u_ready, d_valid, d_data)) ->
      Builder.instantiate b
        ~inst_name:("pb_" ^ i.Decoupled.if_name)
        ~module_name:("zoomie_pb_" ^ i.Decoupled.if_name)
        ~clock_map:[ ("clk", mut_clock) ]
        [
          Circuit.Drive_input ("pause", pause);
          Circuit.Drive_input ("u_valid", read_port i.Decoupled.valid_signal);
          Circuit.Drive_input ("u_data", read_port i.Decoupled.data_signal);
          Circuit.Drive_input ("d_ready", List.assoc i.Decoupled.ready_signal wrapper_inputs);
          Circuit.Read_output ("u_ready", u_ready);
          Circuit.Read_output ("d_valid", d_valid);
          Circuit.Read_output ("d_data", d_data);
        ])
    pb_wires;
  (* --- assertion monitor instances (gated clock: they sample the design's
     own time base and freeze with it) --- *)
  List.iteri
    (fun idx (m : Zoomie_sva.Emit.monitor) ->
      let conns =
        List.map
          (fun (sig_name, _w) -> Circuit.Drive_input (sig_name, read_port sig_name))
          m.Zoomie_sva.Emit.m_inputs
        @ [ Circuit.Read_output ("violation", List.nth assert_viol_wires idx) ]
      in
      Builder.instantiate b
        ~inst_name:(Printf.sprintf "sva_%d" idx)
        ~module_name:m.Zoomie_sva.Emit.m_circuit.Circuit.name
        ~clock_map:[ ("clk", gclk) ]
        conns)
    cfg.assertions;
  (* --- wrapper outputs --- *)
  List.iter
    (fun (s : Circuit.signal) ->
      let name = s.Circuit.name in
      let expr =
        if is_requester_out name then begin
          (* Find which interface and which role. *)
          let i =
            List.find
              (fun (i : Decoupled.t) ->
                i.Decoupled.valid_signal = name || i.Decoupled.data_signal = name)
              requester_ifs
          in
          let _, d_valid, d_data = List.assoc i pb_wires in
          if i.Decoupled.valid_signal = name then Expr.Signal d_valid
          else Expr.Signal d_data
        end
        else if is_responder_ready name then
          Zoomie_pause.Pause_buffer.responder_ready_mask ~pause_q
            ~mut_ready:(Expr.Signal (List.assoc name out_wires))
        else Expr.Signal (List.assoc name out_wires)
      in
      ignore (Builder.output b name s.Circuit.width expr))
    (Circuit.outputs mut);
  let wrapper = Builder.finish b in
  (* --- rebuild the design --- *)
  let d = Design.copy design in
  let d = Design.add_module d wrapper in
  (* Pause buffer modules. *)
  let d =
    List.fold_left
      (fun d (i : Decoupled.t) ->
        Design.add_module d
          (Zoomie_pause.Pause_buffer.requester_side
             ~name:("zoomie_pb_" ^ i.Decoupled.if_name)
             ~width:i.Decoupled.data_width))
      d requester_ifs
  in
  (* Assertion monitor modules. *)
  let d =
    List.fold_left
      (fun d (m : Zoomie_sva.Emit.monitor) ->
        Design.add_module d m.Zoomie_sva.Emit.m_circuit)
      d cfg.assertions
  in
  (* Redirect every instance of the MUT to the wrapper. *)
  let redirect (c : Circuit.t) =
    let changed = ref false in
    let instances =
      List.map
        (fun (inst : Circuit.instance) ->
          if inst.Circuit.module_name = cfg.mut_module then begin
            changed := true;
            { inst with Circuit.module_name = wrapper.Circuit.name }
          end
          else inst)
        c.Circuit.instances
    in
    if !changed then Some { c with Circuit.instances } else None
  in
  let d =
    List.fold_left
      (fun d name ->
        if name = wrapper.Circuit.name then d
        else
          match redirect (Design.find d name) with
          | Some c -> Design.replace_module d c
          | None -> d)
      d (Design.module_names d)
  in
  (d, { wrapper_module = wrapper.Circuit.name; cfg; mut_clock })
