(** The trigger unit (Algorithm 1): runtime-configurable value breakpoints.

    For each watched signal the wrapper instantiates a comparator against
    a {e configuration register} (reference value + per-signal masks); the
    per-signal hits combine through an AND tree and an OR tree, each with
    its own select mask.  Because the reference values and masks are
    ordinary registers reachable by state injection, breakpoints are
    (re)armed at runtime with zero recompilation — the paper's central
    trick for software-like conditional breakpoints.

    Host-side arming is pure data: {!arm_all} / {!arm_any} / {!disarm}
    produce the register writes, {!Host} injects them. *)

open Zoomie_rtl

(** One watched signal, by RTL name and width. *)
type watch = { w_name : string; w_width : int }

(** {1 Configuration-register naming}

    These names are shared between the RTL generator and the host; they
    live under the wrapper instance. *)

val refval_reg : watch -> string
val and_mask_reg : watch -> string
val or_mask_reg : watch -> string

(** Select masks choosing which watches participate in the AND / OR
    combine (one bit per watch, in declaration order). *)
val and_sel_reg : string

val or_sel_reg : string

(** Emit the trigger unit into a wrapper under construction: comparators,
    masks and the two combine trees.  Returns the 1-bit "trigger fired"
    expression.  [signals] supplies the watched expressions by name. *)
val build :
  Builder.t -> clock:string -> watch list -> signals:(string * Expr.t) list -> Expr.t

(** A set of configuration-register writes ((register name, value) pairs)
    realizing one breakpoint condition. *)
type arm_spec = (string * Bits.t) list

(** @raise Invalid_argument naming the offender if a condition mentions a
    signal that is not watched. *)
val check_watched : watch list -> (string * 'a) list -> unit

(** Break when {e all} the given (signal = value) conditions hold. *)
val arm_all : watch list -> (string * Bits.t) list -> arm_spec

(** Break when {e any} of the given (signal = value) conditions holds. *)
val arm_any : watch list -> (string * Bits.t) list -> arm_spec

(** Clear every value breakpoint. *)
val disarm : watch list -> arm_spec
