(** The Debug Controller (§3): the hardware half of Zoomie.

    {!wrap} rewrites a design so that one module — the module under test
    (MUT) — runs on a glitch-free gated clock owned by the controller.
    Around it the wrapper instantiates:

    - the {!module:Trigger} unit (value breakpoints, Algorithm 1);
    - a 64-bit step/cycle counter pair (cycle breakpoints, single-step
      with an exact [step_done] hand-back);
    - watchpoint shadows (break when a watched signal {e changes}), each
      with a priming register so the first observed cycle never
      spuriously fires;
    - compiled SVA monitors (assertion breakpoints, {!module:Zoomie_sva});
    - pause buffers ({!module:Zoomie_pause}) on every decoupled interface
      crossing the MUT boundary, so freezing the MUT cannot create
      phantom or lost transactions (Figure 3).

    All controller state is ordinary FFs: the host drives it entirely
    through readback and state injection, never through recompilation. *)

module Decoupled = Zoomie_pause.Decoupled
open Zoomie_rtl

(** {1 Controller register names (under the wrapper instance)} *)

val ctl_run_reg : string

val stop_latched_reg : string

val step_counter_reg : string

val cycle_count_reg : string

val assert_enable_reg : string

(** One-hot cause of the current stop; see the [cause_*_bit] indices. *)
val stop_cause_reg : string

(** Which assertion monitor fired (one bit per assertion). *)
val assert_cause_reg : string

val cause_value_bit : int

val cause_cycle_bit : int

val cause_assert_bit : int

val cause_watch_bit : int

(** Watchpoint enable mask / last-value shadow for one watched signal. *)
val watch_mask_reg : Trigger.watch -> string

val watch_shadow_reg : Trigger.watch -> string

(** What to build around the MUT. *)
type config = {
  mut_module : string;
  interfaces : Decoupled.t list;  (** decoupled interfaces crossing the boundary *)
  watches : Trigger.watch list;  (** signals for value/watch breakpoints *)
  assertions : Zoomie_sva.Emit.monitor list;
}

(** Everything the host needs to find the controller after compilation. *)
type info = { wrapper_module : string; cfg : config; mut_clock : string }

(** Name of the generated wrapper module for a MUT module name. *)
val wrapper_name : string -> string

(** Wrap [cfg.mut_module] inside design: returns the rewritten design
    (every former instantiation of the MUT now instantiates the wrapper)
    and the {!info} handle.

    @raise Invalid_argument for a MUT with multiple clock domains — the
    single-gated-clock architecture is the paper's §6.1 limitation, and we
    reject exactly what it rejects. *)
val wrap : Design.t -> config -> Design.t * info
