(** SLR-aware readback and state injection (§3.2, §4.6, Table 3).

    Readback is Zoomie's visibility primitive: pull configuration frames
    off the board, then use the logic-location map to turn frame bits
    back into named RTL registers and memory contents.  Injection is the
    inverse — flip the right frame bits and GRESTORE.

    The Table 3 optimization lives in the planners: instead of reading
    every frame of every SLR (the unoptimized baseline that costs ~33 s),
    the plan covers only the columns that actually hold the selected
    cells, grouped per SLR so each chiplet is reached with the minimal
    number of BOUT ring hops — this is what makes the primary SLR
    (zero hops) measurably fastest.

    The host side is indexed end to end: frame responses land in a
    {!Frame_index} (hashtable keyed by full frame address) and register
    extraction walks a per-design {!site_map} built once from the
    logic-location metadata, so reads and injections cost O(1) per FF bit
    instead of the O(sites × frames) of association-list scans. *)

module Board = Zoomie_bitstream.Board
module Program = Zoomie_bitstream.Program
module Netlist = Zoomie_synth.Netlist
open Zoomie_fabric
open Zoomie_rtl

(** Typed failure of the readback/injection engine: unknown register or
    memory names, and plans that do not cover the state they are asked to
    extract.  Readback never silently fabricates zero bits. *)
exception Readback_error of string

(** {1 The frame response index} *)

module Frame_index : sig
  (** Full frame address: (slr, row, col, minor). *)
  type key = int * int * int * int

  type t

  val create : ?size:int -> unit -> t

  (** Number of frames held. *)
  val length : t -> int

  val mem : t -> key -> bool

  (** Insert (or replace) one frame's words. *)
  val add : t -> key -> int array -> unit

  val find : t -> key -> int array option

  (** [Some b] when the frame is present, [None] when the response does
      not cover it. *)
  val bit : t -> key -> word:int -> bit:int -> bool option

  (** Set one bit of a covered frame in place; [false] when absent. *)
  val set_bit : t -> key -> word:int -> bit:int -> bool -> bool

  (** Iterate frames in insertion (request) order. *)
  val iter : (key -> int array -> unit) -> t -> unit

  val fold : (key -> int array -> 'a -> 'a) -> t -> 'a -> 'a

  (** Deep copy (frame words duplicated). *)
  val copy : t -> t

  (** Distinct SLRs covered, ascending. *)
  val slrs : t -> int list

  (** Per-SLR association-list view [(row, col, minor) -> words] in
      insertion order — the pre-index representation, kept for
      differential testing and the micro-bench baseline. *)
  val to_assoc : t -> slr:int -> ((int * int * int) * int array) list
end

(** {1 Plans} *)

(** One column of frames to read on one SLR. *)
type column = { c_slr : int; c_row : int; c_col : int; c_frames : int }

type plan = {
  columns : column list;
  total_frames : int;
  selected : string array option;
      (** register names the plan was derived from (sorted), when the
          planner knows them — extraction then iterates only these instead
          of every register in the design *)
}

val frames_in_column : Device.t -> slr:int -> col:int -> int

(** {1 The per-design site map}

    Built once per (device, netlist, placement): register name → width and
    per-bit frame coordinates, memory name → placement.  Every indexed
    operation below takes it instead of rescanning the location map. *)

type site_map

val site_map : Device.t -> Netlist.t -> Loc.map -> site_map

(** All register names known to the map, sorted. *)
val register_names : site_map -> string list

val register_width : site_map -> string -> int option

val known_register : site_map -> string -> bool

val known_memory : site_map -> string -> bool

(** The minimal frame set covering every FF/memory cell whose RTL name
    satisfies [select] — the §4.6 SLR-aware plan. *)
val plan_of_select : site_map -> select:(string -> bool) -> plan

(** Plan covering exactly the named registers/memories.
    @raise Readback_error when any name is unknown. *)
val plan_of_names : site_map -> string list -> plan

(** Union of several plans, deduplicating shared columns — the coalescing
    primitive: k overlapping selections become one sweep sized by the
    union of their columns.  [selected] is the sorted union when every
    input plan carries one, [None] otherwise. *)
val merge_plans : plan list -> plan

(** Compatibility planner: builds a throwaway site map each call.  Prefer
    {!site_map} + {!plan_of_select} on repeated paths. *)
val plan_for : Device.t -> Netlist.t -> Loc.map -> select:(string -> bool) -> plan

(** Every frame of one SLR: the unoptimized baseline of Table 3. *)
val full_slr_plan : Device.t -> slr:int -> plan

(** BOUT ring hops needed to address [slr] from the primary. *)
val hops_to : Device.t -> int -> int

(** Emit the MASK/CTL0 write clearing the GSR restriction that a partial
    reconfiguration leaves behind (§4.7) — readback must do this first or
    captured state outside the dynamic region is garbage. *)
val emit_clear_mask : Program.t -> unit

(** Execute the [slr] part of a plan: GCAPTURE, hop to the SLR, read each
    column; returns the indexed frame response. *)
val read_slr_frames : Board.t -> plan -> slr:int -> Frame_index.t

(** Execute a whole plan, SLR by SLR, into one frame index. *)
val read_plan_frames : Board.t -> plan -> Frame_index.t

(** Modeled standalone cost of the [slr] part of [plan]: prices the exact
    word stream {!read_slr_frames} would execute, through the transport
    meter's cost function — so a scheduler's baseline can never disagree
    with what the executor charges. *)
val slr_sweep_cost : Board.t -> plan -> slr:int -> float

(** Modeled standalone cost of executing [plan] alone: per-SLR sweep
    prices summed in execution order (the meter's own batching). *)
val plan_cost : Board.t -> plan -> float

(** {1 Registers} *)

(** Pure host-side parse: reassemble every register satisfying [select]
    from an indexed frame response (no cable traffic).
    @raise Readback_error when a selected register has any bit whose frame
    is absent from the response — partial coverage never reads back as
    silent zeros. *)
val extract_registers :
  site_map -> Frame_index.t -> select:(string -> bool) -> (string * Bits.t) list

(** Demultiplex one named register list out of a (possibly merged) frame
    response — the per-session half of a coalesced sweep.  Results are
    sorted by name, duplicates removed.
    @raise Readback_error on an unknown name or a frame the response does
    not cover. *)
val extract_registers_named :
  site_map -> Frame_index.t -> names:string list -> (string * Bits.t) list

(** Read every FF whose name satisfies [select], as RTL-named registers
    (multi-bit registers are reassembled from their per-bit FFs).  When the
    plan carries its [selected] names, only those registers are considered
    — [select] must not widen beyond the plan (it could not be covered by
    the plan's frames anyway).
    @raise Readback_error when the plan does not fully cover a selected
    register. *)
val read_registers_indexed :
  Board.t -> site_map -> plan -> select:(string -> bool) -> (string * Bits.t) list

(** Compatibility wrapper around {!read_registers_indexed} (rebuilds the
    site map each call). *)
val read_registers :
  Board.t -> Netlist.t -> Loc.map -> plan -> select:(string -> bool) -> (string * Bits.t) list

(** State injection (§3.3): write registers by RTL name through frame
    writes + GRESTORE.  All names are validated before any cable traffic.
    @raise Readback_error when any update names an unknown register. *)
val inject_registers_indexed : Board.t -> site_map -> (string * Bits.t) list -> unit

(** Compatibility wrapper around {!inject_registers_indexed}. *)
val inject_registers : Board.t -> Netlist.t -> Loc.map -> (string * Bits.t) list -> unit

(** {1 Memories} *)

(** Full contents of memory [name] (BRAM or LUTRAM), one word per address.
    @raise Readback_error when the name is unknown. *)
val read_memory_indexed : Board.t -> site_map -> name:string -> Bits.t array

val read_memory : Board.t -> Netlist.t -> Loc.map -> name:string -> Bits.t array

(** Overwrite selected (address, value) words of memory [name].
    @raise Readback_error when the name is unknown. *)
val inject_memory_indexed :
  Board.t -> site_map -> name:string -> (int * Bits.t) list -> unit

val inject_memory :
  Board.t -> Netlist.t -> Loc.map -> name:string -> (int * Bits.t) list -> unit

(** {1 Snapshots (§3.3 record and replay)} *)

(** A raw-frame snapshot of everything a plan covers, with the cycle
    counter at capture time. *)
type snapshot = {
  snap_frames : Frame_index.t;
  snap_cycle : int;
}

val take_snapshot : Board.t -> plan -> snapshot

val restore_snapshot : Board.t -> snapshot -> unit

(** {2 Disk persistence}

    Format v2 stores the capture cycle as two 32-bit halves so campaigns
    past 2³¹ cycles round-trip exactly; v1 files (single 32-bit cycle)
    still load, masked to the unsigned value the writer recorded. *)

val snapshot_magic : int

val snapshot_version : int

val save_snapshot : snapshot -> string -> unit

(** Emit one snapshot onto an already-open binary channel — what
    {!save_snapshot} wraps.  Lets container formats (the timeline
    recorder) embed checkpoints inline in a larger stream. *)
val output_snapshot : out_channel -> snapshot -> unit

exception Bad_snapshot of string

(** @raise Bad_snapshot on a missing, truncated or wrong-version file. *)
val load_snapshot : string -> snapshot

(** Read one snapshot off a channel, leaving it positioned just past the
    snapshot — the inverse of {!output_snapshot}.
    @raise Bad_snapshot on truncation or a bad magic/version. *)
val input_snapshot : in_channel -> snapshot
