(** SLR-aware readback and state injection (§3.2, §4.6, Table 3).

    Readback is Zoomie's visibility primitive: pull configuration frames
    off the board, then use the logic-location map to turn frame bits
    back into named RTL registers and memory contents.  Injection is the
    inverse — flip the right frame bits and GRESTORE.

    The Table 3 optimization lives in {!plan_for}: instead of reading
    every frame of every SLR (the unoptimized baseline that costs ~33 s),
    the plan covers only the columns that actually hold the selected
    cells, grouped per SLR so each chiplet is reached with the minimal
    number of BOUT ring hops — this is what makes the primary SLR
    (zero hops) measurably fastest. *)

module Board = Zoomie_bitstream.Board
module Program = Zoomie_bitstream.Program
module Netlist = Zoomie_synth.Netlist
open Zoomie_fabric
open Zoomie_rtl

(** One column of frames to read on one SLR. *)
type column = { c_slr : int; c_row : int; c_col : int; c_frames : int }

type plan = { columns : column list; total_frames : int }

val frames_in_column : Device.t -> slr:int -> col:int -> int

(** The minimal frame set covering every FF/memory cell whose RTL name
    satisfies [select] — the §4.6 SLR-aware plan. *)
val plan_for : Device.t -> Netlist.t -> Loc.map -> select:(string -> bool) -> plan

(** Every frame of one SLR: the unoptimized baseline of Table 3. *)
val full_slr_plan : Device.t -> slr:int -> plan

(** BOUT ring hops needed to address [slr] from the primary. *)
val hops_to : Device.t -> int -> int

(** Emit the MASK/CTL0 write clearing the GSR restriction that a partial
    reconfiguration leaves behind (§4.7) — readback must do this first or
    captured state outside the dynamic region is garbage. *)
val emit_clear_mask : Program.t -> unit

(** Execute the [slr] part of a plan: GCAPTURE, hop to the SLR, read each
    column; returns [(row, col, frame) -> words]. *)
val read_slr_frames : Board.t -> plan -> slr:int -> ((int * int * int) * int array) list

(** {1 Registers} *)

(** Read every FF whose name satisfies [select], as RTL-named registers
    (multi-bit registers are reassembled from their per-bit FFs). *)
val read_registers :
  Board.t -> Netlist.t -> Loc.map -> plan -> select:(string -> bool) -> (string * Bits.t) list

(** State injection (§3.3): write registers by RTL name through frame
    writes + GRESTORE.  @raise Not_found for an unknown register. *)
val inject_registers : Board.t -> Netlist.t -> Loc.map -> (string * Bits.t) list -> unit

(** {1 Memories} *)

(** Full contents of memory [name] (BRAM or LUTRAM), one word per address. *)
val read_memory : Board.t -> Netlist.t -> Loc.map -> name:string -> Bits.t array

(** Overwrite selected (address, value) words of memory [name]. *)
val inject_memory :
  Board.t -> Netlist.t -> Loc.map -> name:string -> (int * Bits.t) list -> unit

(** {1 Snapshots (§3.3 record and replay)} *)

(** A raw-frame snapshot of everything a plan covers, with the cycle
    counter at capture time. *)
type snapshot = {
  snap_frames : (int * ((int * int * int) * int array) list) list;
  snap_cycle : int;
}

val take_snapshot : Board.t -> plan -> snapshot

val restore_snapshot : Board.t -> snapshot -> unit

(** {2 Disk persistence} *)

val snapshot_magic : int

val snapshot_version : int

val save_snapshot : snapshot -> string -> unit

exception Bad_snapshot of string

(** @raise Bad_snapshot on a missing, truncated or wrong-version file. *)
val load_snapshot : string -> snapshot
