# Convenience entry points; `make check` is the tier-1 gate.

.PHONY: all build test bench-smoke hub-farm-smoke obs-smoke fuzz-smoke timeline-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

# The smoke benches double as end-to-end checks: `netsim smoke` fails
# hard if the compiled event-driven engine diverges bit-for-bit from
# the interpreter on a small manycore (FFs, mems, outputs, injection,
# forced nets); `netsim-batch smoke` fails hard if any lane of the
# 63-wide bit-parallel kernel diverges from the scalar kernel on
# de-phased stimulus; `readback smoke` fails hard if the indexed engine
# and the association-list baseline disagree on a register; `hub smoke`
# fails hard if the coalesced multi-session sweep ever diverges
# bit-for-bit from the serialized single-session path; `vti smoke`
# fails hard if the incremental compile engine ever produces different
# bits (netlist, placement, frames, bitstream, timing, modeled cost)
# from the monolithic baseline flow across an initial compile plus a
# recompile chain; `fuzz smoke` runs a bounded differential fuzzing
# campaign (clean operators must find nothing, an injected broken
# operator must be found AND minimized).  All records land in
# artifacts/BENCH_*.json.
bench-smoke:
	dune exec bench/main.exe -- netsim smoke
	dune exec bench/main.exe -- netsim-batch smoke
	dune exec bench/main.exe -- readback smoke
	dune exec bench/main.exe -- hub smoke
	dune exec bench/main.exe -- vti smoke
	dune exec bench/main.exe -- fuzz smoke

# The socketed farm, end to end: 64 loopback clients against 2 board
# shards, with the scripted session checked bit-for-bit against the
# in-process tick path and per-shard coalescing ratios recorded in
# artifacts/BENCH_hub_farm_smoke.json.
hub-farm-smoke:
	dune exec bench/main.exe -- hub-farm smoke

# Observability gate (expects the smoke benches to have run): the bench
# records must embed a metrics snapshot with the cross-layer keys, and a
# traced 4-client hub demo must produce a Chrome trace that names the
# coalesced sweep.
obs-smoke:
	grep -q '"metrics"' artifacts/BENCH_netsim_smoke.json
	grep -q '"netsim.events_settled"' artifacts/BENCH_netsim_smoke.json
	grep -q '"metrics"' artifacts/BENCH_netsim_batch_smoke.json
	grep -q '"netsim.batch.lanes"' artifacts/BENCH_netsim_batch_smoke.json
	grep -q '"netsim.partition_dispatches"' artifacts/BENCH_netsim_batch_smoke.json
	grep -q '"metrics"' artifacts/BENCH_hub_smoke.json
	grep -q '"hub.cable_seconds"' artifacts/BENCH_hub_smoke.json
	grep -q '"jtag.seconds"' artifacts/BENCH_hub_smoke.json
	grep -q '"metrics"' artifacts/BENCH_readback_smoke.json
	grep -q '"metrics"' artifacts/BENCH_vti_smoke.json
	grep -q '"seed"' artifacts/BENCH_fuzz_smoke.json
	grep -q '"schedule_digest"' artifacts/BENCH_fuzz_smoke.json
	grep -q '"metrics"' artifacts/BENCH_hub_farm_smoke.json
	grep -q '"farm.shard0.coalescing_ratio"' artifacts/BENCH_hub_farm_smoke.json
	grep -q '"sharded_speedup"' artifacts/BENCH_hub_farm_smoke.json
	for f in artifacts/BENCH_*.json; do \
	  grep -q '"metrics"' $$f || { echo "$$f: no metrics"; exit 1; }; \
	  grep -q '"seed"' $$f || { echo "$$f: no seed"; exit 1; }; \
	done
	mkdir -p artifacts
	dune exec bin/zoomie_cli.exe -- hub --clients 4 --trace artifacts/hub_trace_smoke.json > /dev/null
	grep -q '"hub.sweep"' artifacts/hub_trace_smoke.json

# Campaign-level gate for `zoomie fuzz` itself: (1) a split campaign
# (run 6 cases, then --resume to 12) must land on the same schedule
# digest as a one-shot 12-case campaign — resumption is deterministic;
# (2) a --broken-op campaign must find divergences and write at least
# one minimized reproducer to the corpus.
fuzz-smoke:
	rm -rf artifacts/fuzz_smoke_a artifacts/fuzz_smoke_b artifacts/fuzz_smoke_broken
	dune exec bin/zoomie_cli.exe -- fuzz --oracle netsim --seed 7 --budget 6 \
	  --corpus artifacts/fuzz_smoke_a
	dune exec bin/zoomie_cli.exe -- fuzz --oracle netsim --seed 7 --budget 12 \
	  --corpus artifacts/fuzz_smoke_a --resume
	dune exec bin/zoomie_cli.exe -- fuzz --oracle netsim --seed 7 --budget 12 \
	  --corpus artifacts/fuzz_smoke_b
	grep '"schedule_digest"' artifacts/fuzz_smoke_a/report.json > artifacts/fuzz_digest_a
	grep '"schedule_digest"' artifacts/fuzz_smoke_b/report.json > artifacts/fuzz_digest_b
	cmp artifacts/fuzz_digest_a artifacts/fuzz_digest_b
	dune exec bin/zoomie_cli.exe -- fuzz --oracle netsim --seed 7 --budget 4 \
	  --corpus artifacts/fuzz_smoke_broken --broken-op --minimize
	ls artifacts/fuzz_smoke_broken/min/*.repro > /dev/null

# Flight-recorder gate: `timeline smoke` fails hard if recording the
# session costs more than 10% extra cable time, if a saved recording
# does not replay bit-for-bit on a fresh rig, or if reverse-continue
# misses its target cycle.  It leaves a sample recording in
# artifacts/timeline_sample.zrec (uploaded by CI) that `zoomie replay`
# can re-drive; the trailing greps pin the timeline.* instrumentation
# into the bench record.
timeline-smoke:
	dune exec bench/main.exe -- timeline smoke
	grep -q '"metrics"' artifacts/BENCH_timeline_smoke.json
	grep -q '"timeline.checkpoints"' artifacts/BENCH_timeline_smoke.json
	grep -q '"timeline.restore_jtag_s"' artifacts/BENCH_timeline_smoke.json
	dune exec bin/zoomie_cli.exe -- replay artifacts/timeline_sample.zrec > /dev/null

check: build
	dune runtest
	$(MAKE) bench-smoke
	$(MAKE) hub-farm-smoke
	$(MAKE) obs-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) timeline-smoke

clean:
	dune clean
	rm -rf artifacts
