# Convenience entry points; `make check` is the tier-1 gate.

.PHONY: all build test bench-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

# The smoke benches double as end-to-end checks: `netsim smoke` fails
# hard if the compiled event-driven engine diverges bit-for-bit from
# the interpreter on a small manycore (FFs, mems, outputs, injection,
# forced nets); `readback smoke` fails hard if the indexed engine and
# the association-list baseline disagree on a register; `hub smoke`
# fails hard if the coalesced multi-session sweep ever diverges
# bit-for-bit from the serialized single-session path; `vti smoke`
# fails hard if the incremental compile engine ever produces different
# bits (netlist, placement, frames, bitstream, timing, modeled cost)
# from the monolithic baseline flow across an initial compile plus a
# recompile chain.
bench-smoke:
	dune exec bench/main.exe -- netsim smoke
	dune exec bench/main.exe -- readback smoke
	dune exec bench/main.exe -- hub smoke
	dune exec bench/main.exe -- vti smoke

check: build
	dune runtest
	dune exec bench/main.exe -- netsim smoke
	dune exec bench/main.exe -- readback smoke
	dune exec bench/main.exe -- hub smoke
	dune exec bench/main.exe -- vti smoke

clean:
	dune clean
