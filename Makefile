# Convenience entry points; `make check` is the tier-1 gate.

.PHONY: all build test bench-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

# The readback micro-bench in smoke mode doubles as an end-to-end check:
# it compiles and programs an 18-core SoC, then fails hard if the indexed
# engine and the association-list baseline ever disagree on a register.
bench-smoke:
	dune exec bench/main.exe -- readback smoke

check: build
	dune runtest
	dune exec bench/main.exe -- readback smoke

clean:
	dune clean
