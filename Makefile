# Convenience entry points; `make check` is the tier-1 gate.

.PHONY: all build test bench-smoke obs-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

# The smoke benches double as end-to-end checks: `netsim smoke` fails
# hard if the compiled event-driven engine diverges bit-for-bit from
# the interpreter on a small manycore (FFs, mems, outputs, injection,
# forced nets); `netsim-batch smoke` fails hard if any lane of the
# 63-wide bit-parallel kernel diverges from the scalar kernel on
# de-phased stimulus; `readback smoke` fails hard if the indexed engine
# and the association-list baseline disagree on a register; `hub smoke`
# fails hard if the coalesced multi-session sweep ever diverges
# bit-for-bit from the serialized single-session path; `vti smoke`
# fails hard if the incremental compile engine ever produces different
# bits (netlist, placement, frames, bitstream, timing, modeled cost)
# from the monolithic baseline flow across an initial compile plus a
# recompile chain.
bench-smoke:
	dune exec bench/main.exe -- netsim smoke
	dune exec bench/main.exe -- netsim-batch smoke
	dune exec bench/main.exe -- readback smoke
	dune exec bench/main.exe -- hub smoke
	dune exec bench/main.exe -- vti smoke

# Observability gate (expects the smoke benches to have run): the bench
# records must embed a metrics snapshot with the cross-layer keys, and a
# traced 4-client hub demo must produce a Chrome trace that names the
# coalesced sweep.
obs-smoke:
	grep -q '"metrics"' BENCH_netsim_smoke.json
	grep -q '"netsim.events_settled"' BENCH_netsim_smoke.json
	grep -q '"metrics"' BENCH_netsim_batch_smoke.json
	grep -q '"netsim.batch.lanes"' BENCH_netsim_batch_smoke.json
	grep -q '"netsim.partition_dispatches"' BENCH_netsim_batch_smoke.json
	grep -q '"metrics"' BENCH_hub_smoke.json
	grep -q '"hub.cable_seconds"' BENCH_hub_smoke.json
	grep -q '"jtag.seconds"' BENCH_hub_smoke.json
	grep -q '"metrics"' BENCH_readback_smoke.json
	grep -q '"metrics"' BENCH_vti_smoke.json
	dune exec bin/zoomie_cli.exe -- hub --clients 4 --trace hub_trace_smoke.json > /dev/null
	grep -q '"hub.sweep"' hub_trace_smoke.json

check: build
	dune runtest
	dune exec bench/main.exe -- netsim smoke
	dune exec bench/main.exe -- netsim-batch smoke
	dune exec bench/main.exe -- readback smoke
	dune exec bench/main.exe -- hub smoke
	dune exec bench/main.exe -- vti smoke
	$(MAKE) obs-smoke

clean:
	dune clean
