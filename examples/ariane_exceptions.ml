(* Case study 2 (§5.6): is the hang hardware or software?

   The Ariane-style core hangs.  We arm the paper's breakpoint —
   mcause[63] == 0 && MIE == 0 && MPIE == 0 — which fires only after two
   nested exception levels.  One stop later we observe pc == mepc with the
   exception path active: the hardware is legally looping on a trap whose
   handler address the *software* misconfigured.  No recompile, no ILA.

   Run with: dune exec examples/ariane_exceptions.exe *)

open Zoomie.Zoomie_api
module Ariane = Workloads.Ariane
module Host = Debug.Host
module Board = Bitstream.Board

let () =
  Printf.printf "=== Case study 2: hardware or software? ===\n";
  let project = create_project (Ariane.soc ~program:Ariane.bad_trap_program ()) in
  let project =
    add_debug project ~mut:"ariane_core" ~watches:Ariane.nested_exception_watches
  in
  let run = compile_vendor project in
  let board = board project in
  program_vendor board run;
  let host = attach project board ~mut_path:"cpu" in
  Synth.Netsim.poke_input (Board.netsim board) "resetn" (Rtl.Bits.of_int ~width:1 1);
  (* The paper's breakpoint condition, armed on the fly through state
     injection — note mcause is matched with bit 63 clear (not an
     interrupt) and both interrupt-enable bits at zero. *)
  Host.break_on_all host
    [
      ("dbg_mcause", Rtl.Bits.of_int ~width:64 Ariane.cause_instr_access_fault);
      ("dbg_mie", Rtl.Bits.of_int ~width:1 0);
      ("dbg_mpie", Rtl.Bits.of_int ~width:1 0);
    ];
  let hit = Host.run_until_stop ~max_cycles:2000 host in
  Printf.printf "breakpoint (mcause[63]==0 && MIE==0 && MPIE==0) hit: %b\n"
    (hit);
  let pc = Rtl.Bits.to_int (Host.read_register host "pc") in
  let mepc = Rtl.Bits.to_int (Host.read_register host "mepc") in
  let mtvec = Rtl.Bits.to_int (Host.read_register host "mtvec") in
  let mcause = Rtl.Bits.to_int (Host.read_register host "mcause") in
  Printf.printf "paused state:\n  pc     = %d\n  mepc   = %d\n  mtvec  = %d\n  mcause = %d (1 = instruction access fault)\n"
    (pc)
    (mepc)
    (mtvec)
    (mcause);
  if pc = mepc && mcause = Ariane.cause_instr_access_fault then begin
    Printf.printf "diagnosis: pc == mepc with the exception flag set — the core re-traps\n";
    Printf.printf "on the same address every cycle.  mtvec = %d points outside the valid\n"
    (mtvec);
    Printf.printf "range [0, %d): LEGAL hardware behavior, SOFTWARE misconfiguration.\n"
      Ariane.valid_limit
  end;
  (* Prove it by fixing the software only: inject a sane mtvec and let the
     trap handler run. *)
  Host.write_register host "mtvec" (Rtl.Bits.of_int ~width:16 32);
  Host.write_register host "pc" (Rtl.Bits.of_int ~width:16 32);
  Host.resume host;
  Board.run board 100;
  Host.pause host;
  Printf.printf "after injecting a valid mtvec: pc = %d, mie = %d (the core recovered)\n"
    (Rtl.Bits.to_int (Host.read_register host "pc"))
    (Rtl.Bits.to_int (Host.read_register host "mie"));
  Printf.printf "host JTAG time: %.3f s — no recompilation at any point\n"
    (Host.jtag_seconds host)