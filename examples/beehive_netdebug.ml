(* Case study 3 (§5.7): debugging a 250 MHz network stack.

   The Beehive-style stack receives MAC traffic with no backpressure; a
   drop queue protects the protocol engine.  Zoomie wraps the engine (the
   portion after the queue), closes timing at the design's 250 MHz clock,
   and gives breakpoints on AXI transactions with full-stack visibility —
   the niche where both ILAs (recompiles, frequency pressure) and
   record/replay (hours of simulated seconds) fall down.

   Run with: dune exec examples/beehive_netdebug.exe *)

open Zoomie.Zoomie_api
module Beehive = Workloads.Beehive
module Host = Debug.Host
module Board = Bitstream.Board

let frame ~flow ~seq = (seq lsl 16) lor (0x01 lsl 8) lor flow

let () =
  Printf.printf "=== Case study 3: 100 Gbps-class network stack at 250 MHz ===\n";
  let project =
    create_project ~freq_mhz:Beehive.freq_mhz (Beehive.stack ())
  in
  let project =
    add_debug project ~mut:Beehive.engine_module
      ~interfaces:(Beehive.interfaces ()) ~watches:(Beehive.watches ())
  in
  let run = compile_vendor project in
  Printf.printf "with Debug Controller attached: fmax = %.1f MHz (target %.0f) -> %s\n"
    (run.Vendor.Vivado.timing.Pnr.Timing.fmax_mhz)
    (Beehive.freq_mhz)
    ((if Pnr.Timing.meets_timing run.Vendor.Vivado.timing ~mhz:Beehive.freq_mhz       then "timing closed, no violations"       else "TIMING VIOLATION"));
  let board = board project in
  program_vendor board run;
  let host = attach project board ~mut_path:"engine" in
  let sim = Board.netsim board in
  let send w =
    Synth.Netsim.poke_input sim "mac_valid" (Rtl.Bits.of_int ~width:1 1);
    Synth.Netsim.poke_input sim "mac_data" (Rtl.Bits.of_int ~width:64 w);
    Synth.Netsim.poke_input sim "tx_ready" (Rtl.Bits.of_int ~width:1 1);
    Board.run board 1;
    Synth.Netsim.poke_input sim "mac_valid" (Rtl.Bits.of_int ~width:1 0);
    Board.run board 2
  in
  (* Arm a breakpoint on the AXI TX transaction: pause the engine the exact
     cycle it emits an acknowledgement. *)
  Host.break_on_all host [ ("tx_valid", Rtl.Bits.of_int ~width:1 1) ];
  send (frame ~flow:3 ~seq:0);
  send (frame ~flow:3 ~seq:1);
  let hit = Host.is_stopped host in
  Printf.printf "breakpoint on the first TX transaction: %b\n"
    (hit);
  Printf.printf "  frames_seen   = %d\n"
    (Rtl.Bits.to_int (Host.read_register host "frames_seen"));
  Printf.printf "  s2_data (ACK) = %s\n"
    (Rtl.Bits.to_hex_string (Host.read_register host "s2_data"));
  (* Networking bugs manifest late: inspect the sequence state while more
     traffic keeps arriving — the un-paused queue absorbs or drops it, the
     behavior the stack needs anyway (§6.2). *)
  Host.clear_value_breakpoints host;
  Host.resume host;
  (* A burst while the engine is paused again: the drop queue does its job. *)
  Host.pause host;
  for seq = 2 to 40 do
    send (frame ~flow:3 ~seq)
  done;
  Host.resume host;
  Board.run board 300;
  Host.pause host;
  Printf.printf "after a 39-frame burst against a paused engine:\n";
  Printf.printf "  frames_seen  = %d\n"
    (Rtl.Bits.to_int (Host.read_register host "frames_seen"));
  Printf.printf "  out_of_order = %d\n"
    (Rtl.Bits.to_int (Host.read_register host "out_of_order"));
  Printf.printf "  drop_count   = %d (whole frames dropped by the queue, by design)\n"
    (Rtl.Bits.to_int        (Synth.Netsim.read_register sim "drop_ctr"));
  Printf.printf "host JTAG time: %.3f s\n"
    (Host.jtag_seconds host)