(* Quickstart: build a tiny design, wrap it with the Debug Controller,
   compile, program the (simulated) U200 board, and drive a software-like
   debug session: run, breakpoint, inspect, inject, single-step, resume.

   Run with: dune exec examples/quickstart.exe *)

open Zoomie.Zoomie_api
open Rtl

(* A counter that emits an event word every 16 counts over a decoupled
   (valid/ready) interface — our module under test. *)
let counter_mut () =
  let b = Builder.create "my_counter" in
  let clk = Builder.clock b "clk" in
  let ev_ready = Builder.input b "ev_ready" 1 in
  let count = Builder.reg b ~clock:clk "count" 16 in
  let pending = Builder.reg b ~clock:clk "pending" 1 in
  let fire = Expr.(Slice (Signal count, 3, 0) ==: const_int ~width:4 15) in
  let running = Expr.(~:(Signal pending)) in
  Builder.reg_next b count
    Expr.(mux running (Signal count +: const_int ~width:16 1) (Signal count));
  Builder.reg_next b pending
    Expr.(mux (running &: fire) vdd
            (mux (Signal pending &: ev_ready) gnd (Signal pending)));
  ignore (Builder.output b "ev_valid" 1 (Expr.Signal pending));
  ignore (Builder.output b "ev_data" 16 (Expr.Signal count));
  ignore (Builder.output b "dbg_count" 16 (Expr.Signal count));
  Builder.finish b

let top () =
  let b = Builder.create "top" in
  let clk = Builder.clock b "clk" in
  let ev_valid = Builder.wire b "ev_valid_w" 1 in
  let ev_data = Builder.wire b "ev_data_w" 16 in
  let dbg_count = Builder.wire b "dbg_count_w" 16 in
  Builder.instantiate b ~inst_name:"dut" ~module_name:"my_counter"
    [
      Circuit.Drive_input ("ev_ready", Expr.vdd);
      Circuit.Read_output ("ev_valid", ev_valid);
      Circuit.Read_output ("ev_data", ev_data);
      Circuit.Read_output ("dbg_count", dbg_count);
    ];
  let events =
    Builder.reg_fb b ~clock:clk ~enable:(Expr.Signal ev_valid) "events_r" 16
      ~next:(fun q -> Expr.(q +: const_int ~width:16 1))
  in
  ignore (Builder.output b "events" 16 (Expr.Signal events));
  Design.create ~top:"top" [ Builder.finish b; counter_mut () ]

let () =
  Printf.printf "=== Zoomie quickstart ===\n";
  (* 1. Project + Debug Controller around the MUT. *)
  let project = create_project (top ()) in
  let monitor =
    assertion_exn ~widths:(function "dbg_count" -> 16 | _ -> 1)
      "overflow_guard: assert property (@(posedge clk) dbg_count != 16'd200);"
  in
  let project =
    add_debug project ~mut:"my_counter"
      ~interfaces:
        [
          Pause.Decoupled.make ~name:"ev" ~data_width:16 ~valid:"ev_valid"
            ~ready:"ev_ready" ~data:"ev_data" ~mut_is_requester:true ();
        ]
      ~watches:[ { Debug.Trigger.w_name = "dbg_count"; w_width = 16 } ]
      ~assertions:[ monitor ]
  in
  (* 2. Compile and program the board. *)
  let run = compile_vendor project in
  Printf.printf "compiled: %d LUTs, fmax %.1f MHz, modeled compile %.1f min\n"
    (Array.length run.Vendor.Vivado.netlist.Synth.Netlist.luts)
    (run.Vendor.Vivado.timing.Pnr.Timing.fmax_mhz)
    ((run.Vendor.Vivado.modeled_seconds /. 60.0));
  let board = board project in
  program_vendor board run;
  let host = attach project board ~mut_path:"dut" in
  (* 3. Run freely, then set a value breakpoint on the fly. *)
  Bitstream.Board.run board 25;
  Printf.printf "after 25 cycles, count = %d\n"
    (Rtl.Bits.to_int (Debug.Host.read_register host "count"));
  Debug.Host.break_on_all host [ ("dbg_count", Bits.of_int ~width:16 70) ];
  let hit = Debug.Host.run_until_stop ~max_cycles:1000 host in
  Printf.printf "value breakpoint hit: %b (count = %d)\n"
    (hit)
    (Rtl.Bits.to_int (Debug.Host.read_register host "count"));
  (* 4. Full visibility: read every register in the MUT. *)
  List.iter
    (fun (name, v) -> Printf.printf "  %-24s = %s\n"
    (name)
    (Rtl.Bits.to_string v))
    (Debug.Host.read_state host);
  (* 5. Mutate state (no recompile!), step 3 cycles, inspect again. *)
  Debug.Host.clear_value_breakpoints host;
  Debug.Host.write_register host "count" (Bits.of_int ~width:16 150);
  Debug.Host.step host 3;
  Printf.printf "after inject(150) + step(3): count = %d\n"
    (Rtl.Bits.to_int (Debug.Host.read_register host "count"));
  (* 5b. Capture a runtime-chosen waveform around the injected state:
     probes and window picked here, at the prompt — no ILA recompile. *)
  let wave =
    Debug.Host.trace host ~cycles:12 ~signals:(fun n ->
        n = "count" || n = "pending")
  in
  Debug.Wave.write wave "quickstart_trace.vcd";
  Printf.printf "traced 12 cycles of count/pending -> quickstart_trace.vcd\n";
  (* 6. Resume; the compiled-in assertion pauses the design at 200. *)
  Debug.Host.resume host;
  let hit = Debug.Host.run_until_stop ~max_cycles:2000 host in
  let cause = Debug.Host.stop_cause host in
  Printf.printf "assertion breakpoint hit: %b (assertion cause: %b, count = %d)\n"
    (hit)
    (cause.Debug.Host.assertion_bp)
    (Rtl.Bits.to_int (Debug.Host.read_register host "count"));
  Printf.printf "host JTAG time spent: %.3f s\n"
    (Debug.Host.jtag_seconds host);
  Printf.printf "=== done ===\n"