(* Case study 1 (§5.5): debugging the hanging Cohort accelerator.

   Side A replays the traditional flow: five ILA compile-probe-observe
   iterations, each a full recompilation, then a sixth compile for the fix
   — more than two modeled hours (the SoC carries 40 idle manycore tiles,
   scaling it to the paper's multi-million-gate regime).

   Side B does it the Zoomie way: the design hangs, we pause it, read the
   *entire* MUT state in one readback, see the LSU stuck in WAIT with the
   TLB response acknowledged to the wrong requester, and confirm with an
   assertion breakpoint — all in one session, no recompilation.

   Run with: dune exec examples/cohort_debug.exe *)

open Zoomie.Zoomie_api
module Cohort = Workloads.Cohort
module Host = Debug.Host
module Board = Bitstream.Board

(* --- Side A: the traditional ILA grind ------------------------------- *)

let traditional () =
  Printf.printf "--- Traditional flow (ILA + full recompiles) ---\n";
  let ila_iterations =
    [
      "probe datapath + load-store unit";
      "probe load-store unit + system bus";
      "probe memory management unit + load-store queues";
      "probe all MMU control signals";
      "recompile with the fix";
    ]
  in
  let total = ref 0.0 in
  List.iteri
    (fun i step ->
      (* Each iteration recompiles the whole SoC with new ILA probes. *)
      let project =
        create_project ~replicated_units:Cohort.filler_units
          (Cohort.design ~filler_clusters:40 ())
      in
      let run = compile_vendor project in
      (* ILA insertion adds cells and, more importantly, a full recompile. *)
      total := !total +. run.Vendor.Vivado.modeled_seconds;
      Printf.printf "  iteration %d (%s): %.0f modeled minutes\n"
    ((i + 1))
    (step)
    ((run.Vendor.Vivado.modeled_seconds /. 60.0)))
    ila_iterations;
  Printf.printf "  traditional total: %.1f modeled hours\n\n"
    ((!total /. 3600.0));
  !total

(* --- Side B: one Zoomie session -------------------------------------- *)

let with_zoomie () =
  Printf.printf "--- Zoomie flow (one compile, one session) ---\n";
  let monitor =
    assertion_exn ~widths:Cohort.sva_widths Cohort.mmu_sva
  in
  let project =
    create_project ~replicated_units:Cohort.filler_units
      (Cohort.design ~filler_clusters:40 ())
  in
  let project =
    add_debug project ~mut:Cohort.accel_module ~interfaces:(Cohort.interfaces ())
      ~watches:(Cohort.watches ()) ~assertions:[ monitor ]
  in
  let run = compile_vendor project in
  let compile_s = run.Vendor.Vivado.modeled_seconds in
  Printf.printf "  initial compile (with Debug Controller): %.0f modeled minutes\n"
    ((compile_s /. 60.0));
  let board = board project in
  program_vendor board run;
  let host = attach project board ~mut_path:"soc.accel" in
  let sim = Board.netsim board in
  Synth.Netsim.poke_input sim "start" (Rtl.Bits.of_int ~width:1 1);
  (* The user observes the hang: results stop arriving. *)
  let stopped = Host.run_until_stop ~max_cycles:4000 host in
  Printf.printf "  assertion breakpoint fired: %b\n"
    (stopped);
  let cause = Host.stop_cause host in
  Printf.printf "  stop cause: assertion=%b (the MMU handshake assertion)\n"
    (cause.Host.assertion_bp);
  (* Full visibility, one readback. *)
  let state = Host.read_state host in
  let reg name = Rtl.Bits.to_int (List.assoc ("soc.accel.mut." ^ name) state) in
  Printf.printf "  full state readback (%d registers), the story in one stop:\n"
    (List.length state);
  Printf.printf "    lsu_state   = %d  (2 = WAIT: the LSU is starved)\n"
    (reg "lsu_state");
  Printf.printf "    tlb_sel_r   = %d  (arbiter pointer at response time)\n"
    (reg "tlb_sel_r");
  Printf.printf "    tlb_p2_id   = %d  (the response actually belonged to id 0!)\n"
    (reg "tlb_p2_id");
  Printf.printf "    pf_waiting  = %d  (the prefetcher stole the ack)\n"
    (reg "pf_waiting");
  Printf.printf "  => ack routes by tlb_sel_r instead of the response id: the (2.2) bug.\n";
  (* §3.3: hide the bug to preserve emulation progress — release the LSU by
     injecting the acknowledgement it missed. *)
  Host.write_register host "lsu_state" (Rtl.Bits.of_int ~width:2 3);
  Host.resume host;
  Board.run board 400;
  Host.pause host;
  Printf.printf "  after state-injection workaround: items_done = %d (progress resumed)\n"
    (Rtl.Bits.to_int (Host.read_register host "items_done"));
  let debug_time_s = Host.jtag_seconds host +. 600.0 in
  (* 10 minutes of human thinking time, generously. *)
  Printf.printf "  Zoomie debugging time: %.1f modeled minutes (JTAG %.1f s + reading)\n"
    ((debug_time_s /. 60.0))
    (Host.jtag_seconds host);
  (compile_s, debug_time_s)

let () =
  Printf.printf "=== Case study 1: multi-million-gate Cohort SoC ===\n\n";
  let traditional_s = traditional () in
  let _compile_s, zoomie_s = with_zoomie () in
  Printf.printf "\n--- Verdict ---\n";
  Printf.printf "  traditional bug hunt : %.1f modeled hours (the paper: >2 hours)\n"
    ((traditional_s /. 3600.0));
  Printf.printf "  Zoomie bug hunt      : %.0f modeled minutes (the paper: <20 minutes)\n"
    ((zoomie_s /. 60.0));
  Printf.printf "  speedup              : %.0fx\n"
    ((traditional_s /. zoomie_s))