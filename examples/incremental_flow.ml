(* The VTI incremental flow (§3.5) on a manycore SoC: compile once, then
   iterate on one core's RTL with minutes-scale partition recompiles and
   partial reconfiguration — while every other core keeps its state.

   This is the small-SoC version of Figure 7; bench/main.exe figure7 runs
   the full 5400-core reproduction.

   Run with: dune exec examples/incremental_flow.exe *)

open Zoomie.Zoomie_api
module Manycore = Workloads.Manycore
module Serv = Workloads.Serv
module Board = Bitstream.Board

let config =
  { Manycore.default_config with clusters = 4; cores_per_cluster = 6 }

let () =
  Printf.printf "=== VTI incremental compilation ===\n";
  let design, _ = Manycore.design ~config () in
  let project =
    create_project design
      ~replicated_units:(Manycore.core_units ~config)
  in
  Printf.printf "SoC: %d zerv cores; iterated partition: %s\n"
    (Manycore.total_cores config)
    (Manycore.debug_core_path);
  (* Initial compile: partitions provisioned with the default 30 % over-
     provision coefficient inside the debug SLR. *)
  let build = compile_vti project ~iterated:[ Manycore.debug_core_path ] in
  Printf.printf "initial VTI compile: %.1f modeled minutes (fmax %.1f MHz)\n"
    ((build.Vti.Flow.modeled_seconds /. 60.0))
    (build.Vti.Flow.timing.Pnr.Timing.fmax_mhz);
  List.iter
    (fun (path, r) ->
      Printf.printf "  partition %-18s -> %s\n"
    (path)
    (Fmt.str "%a" Fabric.Region.pp r))
    build.Vti.Flow.partition_regions;
  let board = board project in
  program_vti board build;
  let sim = Board.netsim board in
  Synth.Netsim.poke_input sim "start" (Rtl.Bits.of_int ~width:1 1);
  Synth.Netsim.poke_input sim "result_ready" (Rtl.Bits.of_int ~width:1 1);
  Board.run board 2500;
  Printf.printf "programmed and ran: cluster1 core mcycle = %s (everything executing)\n"
    (Rtl.Bits.to_hex_string (Synth.Netsim.read_register sim "cluster1.core1.mcycle"));
  (* Three debugging iterations: each changes the debugged core's program
     and recompiles only its partition. *)
  let iterate i build =
    let program =
      [|
        Serv.instr ~op:Serv.op_li ~rd:0 ~rs:0 ~imm:(40 + i);
        Serv.instr ~op:Serv.op_out ~rd:0 ~rs:0 ~imm:0;
        Serv.instr ~op:Serv.op_halt ~rd:0 ~rs:0 ~imm:0;
      |]
    in
    let circuit =
      Serv.core ~name:(Printf.sprintf "zerv_core_dbg_v%d" i) ~program ()
    in
    let t0 = Unix.gettimeofday () in
    let build = recompile build ~path:Manycore.debug_core_path ~circuit in
    Printf.printf "iteration %d: %.1f modeled minutes (%.2f real seconds), partial bitstream %d words\n"
    (i)
    ((build.Vti.Flow.modeled_seconds /. 60.0))
    ((Unix.gettimeofday () -. t0))
    (Array.length build.Vti.Flow.bitstream.Board.bs_words);
    program_vti board build;
    Board.run board 800;
    (* Reconfiguration swaps in a fresh netlist model; re-fetch the handle. *)
    let sim = Board.netsim board in
    let out =
      Rtl.Bits.to_int (Synth.Netsim.read_register sim "cluster0.core0.r0")
    in
    Printf.printf "  reconfigured core now computes r0 = %d; static cores untouched\n"
    (out);
    build
  in
  let build = iterate 1 build in
  let build = iterate 2 build in
  let (_ : Vti.Flow.build) = iterate 3 build in
  Printf.printf "\nThe full-scale (5400-core) comparison against the vendor incremental\nflow is Figure 7: run `dune exec bench/main.exe figure7`.\n"